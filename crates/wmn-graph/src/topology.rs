//! The WMN topology: router mesh plus client attachment.
//!
//! [`WmnTopology`] is the evaluated "network state" behind every fitness
//! computation: given an instance and a placement it derives the
//! router–router mesh (under a [`LinkModel`]), its connected components,
//! and which clients are covered (under a [`CoverageRule`]).
//!
//! # The delta-evaluation engine
//!
//! The paper's Algorithm 3 ends with *"re-establish mesh nodes network
//! connections"* after swapping two routers. The neighborhood-search hot
//! loop is `propose → apply → evaluate → undo`, so [`move_router`] and
//! [`swap_routers`] repair the network **incrementally** and — once the
//! internal scratch buffers are warm — without heap allocation:
//!
//! 1. **Edges.** A router-side [`DynamicGrid`] is kept in sync with every
//!    move (one bucket relocation), so re-deriving the moved router's edges
//!    queries only nearby routers instead of scanning all *n*.
//! 2. **Connectivity.** When the moved router's sorted neighbor set is
//!    unchanged, the graph is identical and component/coverage work is
//!    skipped entirely (the *no-op early-out*; only the moved disk is
//!    re-counted). Otherwise the old-vs-new neighbor diffs become an edge
//!    insert/delete stream for the **dynamic connectivity engine**
//!    ([`DynamicConnectivity`], the default [`ConnectivityMode::Dynamic`]):
//!    insertions union component ids, deletions run a bounded
//!    component-local bidirectional BFS, and a whole-graph
//!    [`Components::rebuild_incremental`] rescan remains only as the
//!    engine's cost-cap fallback (and as the pinnable
//!    [`ConnectivityMode::DsuRescan`] reference). Labels stay canonically
//!    equal to the BFS labeling of a fresh build in every mode.
//! 3. **Coverage.** Per-client *cover counts* (how many counting routers
//!    reach each client) are maintained so a move only increments and
//!    decrements the moved router's old and new disks, flipping `covered`
//!    bits — and the covered total — exactly at 0↔1 transitions.
//!
//! Population-based methods (the GA) perturb **many** genes at once, so
//! [`apply_moves`] generalizes the same three steps to a batch: all
//! positions and grid buckets update first, then *one* repair pass — one
//! grid-local edge re-derivation per moved router, one connectivity
//! rebuild, one coverage delta over the moved disks (or one full in-place
//! pass when the fallback below triggers). Combined with the
//! buffer-reusing [`Clone::clone_from`], a GA child evaluates as "copy
//! parent state + apply the placement diff" instead of a full rebuild.
//!
//! ## Invariants
//!
//! * `positions`/`radii`/`router_index` agree at all times (the grid is
//!   relocated *before* edge repair).
//! * `adjacency` equals `MeshAdjacency::build` of the current positions;
//!   `components` equals `Components::from_adjacency(adjacency)`
//!   (canonical labels); `giant_mask[i] == components.in_giant(i)`.
//! * `cover_count[c]` equals the number of counting routers whose disk
//!   holds client `c`; `covered[c] == (cover_count[c] > 0)`;
//!   `covered_count` equals the number of set bits.
//!
//! ## When the full-rebuild fallback triggers
//!
//! Under [`CoverageRule::GiantComponentOnly`], a changed edge set can flip
//! the giant-component membership of routers that did not move; their disks
//! would all need re-counting, so when any **non-moved** router's
//! membership changes, coverage falls back to the one full
//! [`recompute`](WmnTopology::rebuild_full)-style pass (still in place, no
//! allocation). Under [`CoverageRule::AnyRouter`] membership is irrelevant
//! and the delta path always applies. [`set_connectivity_mode`] selects the
//! connectivity repair strategy ([`ConnectivityMode`]); [`set_rebuild_mode`]
//! disables the incremental engine wholesale — every move then runs
//! [`rebuild_full`](WmnTopology::rebuild_full) — which is the reference
//! baseline the equivalence tests and the `ablation_move_eval` bench
//! compare against.
//!
//! [`move_router`]: WmnTopology::move_router
//! [`swap_routers`]: WmnTopology::swap_routers
//! [`apply_moves`]: WmnTopology::apply_moves
//! [`set_rebuild_mode`]: WmnTopology::set_rebuild_mode
//! [`set_connectivity_mode`]: WmnTopology::set_connectivity_mode
//! [`DynamicConnectivity`]: crate::connectivity::DynamicConnectivity
//! [`DynamicGrid`]: crate::spatial::DynamicGrid

use crate::adjacency::{LinkModel, MeshAdjacency};
use crate::arena::NeighborSlab;
use crate::components::Components;
use crate::connectivity::{ConnectivityStats, DynamicConnectivity, RepairOutcome};
use crate::dsu::UnionFind;
use crate::spatial::{DynamicGrid, GridIndex};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use wmn_model::geometry::{Area, Point};
use wmn_model::instance::ProblemInstance;
use wmn_model::node::RouterId;
use wmn_model::placement::Placement;
use wmn_obs::{ApplyPhases, DegradeStats, EngineStats, TopologyStats};

/// Which routers count for client coverage.
///
/// The paper defines user coverage as clients "connected to the WMN"; the
/// operational mesh is the giant component, hence the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum CoverageRule {
    /// A client is covered iff it lies within the radius of at least one
    /// router belonging to the **giant component**.
    #[default]
    GiantComponentOnly,
    /// A client is covered iff it lies within the radius of **any** router.
    AnyRouter,
}

impl fmt::Display for CoverageRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageRule::GiantComponentOnly => write!(f, "giant-component-only"),
            CoverageRule::AnyRouter => write!(f, "any-router"),
        }
    }
}

/// How a topology repairs connectivity (components + giant) after each
/// move, swap, or batch application. All three strategies produce
/// **bit-identical** state (pinned by the equivalence and proptest
/// suites); they differ only in cost, and the two non-default ones exist
/// as reference oracles and bench baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ConnectivityMode {
    /// Component-local dynamic repair (the default): the edge diff of the
    /// grid-local edge repair drives [`DynamicConnectivity`] — insertions
    /// are pure DSU unions over component ids, deletions run a bounded
    /// bidirectional component-local BFS, and the whole-graph rescan
    /// remains only as the engine's cost-cap fallback.
    #[default]
    Dynamic,
    /// Whole-graph union–find rescan per repair
    /// ([`Components::rebuild_incremental`]) — the previous engine, kept
    /// as the dynamic engine's reference oracle and as the baseline the
    /// `ablation_connectivity` bench measures against.
    DsuRescan,
    /// Full rebuild of grid, adjacency, components, and coverage on every
    /// move ([`WmnTopology::rebuild_full`]) — the original reference
    /// baseline behind [`WmnTopology::set_rebuild_mode`].
    FullRebuild,
}

impl fmt::Display for ConnectivityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectivityMode::Dynamic => write!(f, "dynamic"),
            ConnectivityMode::DsuRescan => write!(f, "dsu-rescan"),
            ConnectivityMode::FullRebuild => write!(f, "full-rebuild"),
        }
    }
}

/// Self-check policy for the connectivity **degradation ladder**
/// `Dynamic → DsuRescan → FullRebuild`.
///
/// All three [`ConnectivityMode`]s produce bit-identical state, so
/// demoting to a slower rung is always output-safe — it trades speed for
/// simplicity when the fast engine shows signs of trouble. Two triggers
/// exist, both off by default (a zero field disables its trigger, and
/// the all-zero `Default` policy is completely free on the hot path):
///
/// * **Audit:** every `audit_every` repairs, the component partition is
///   recomputed from the adjacency by the whole-graph union–find rescan
///   and compared with the engine's. A mismatch adopts the reference
///   partition and demotes one rung.
/// * **Fallback streak:** `fallback_streak_limit` consecutive repairs
///   that each exceeded the dynamic engine's cost cap demote
///   `Dynamic → DsuRescan` (paying one rescan per repair *anyway* means
///   the dynamic bookkeeping is pure overhead).
///
/// Demotions are observable via the `degrade.*` counters of
/// [`engine_stats`](WmnTopology::engine_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationPolicy {
    /// Audit the partition every this many repairs (`0` = never).
    pub audit_every: u64,
    /// Demote `Dynamic → DsuRescan` after this many consecutive cost-cap
    /// fallbacks (`0` = never).
    pub fallback_streak_limit: u64,
}

/// Link model + coverage rule: everything configurable about how a
/// placement is turned into a network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TopologyConfig {
    /// Router–router link rule.
    pub link_model: LinkModel,
    /// Client coverage rule.
    pub coverage_rule: CoverageRule,
}

impl TopologyConfig {
    /// The calibrated reproduction configuration: **mutual-range** links
    /// (`d <= min(r_i, r_j)` — a bidirectional link needs both endpoints in
    /// range) and giant-component-only client coverage.
    ///
    /// Mutual range, not disk overlap, is what reproduces the paper's
    /// regime: its standalone giant components are small for *every* ad hoc
    /// method (3–26 of 64), which only holds under a link rule strict
    /// enough that regular patterns at 3–9 unit spacing do not trivially
    /// chain together (see DESIGN.md §2).
    pub fn paper_default() -> Self {
        TopologyConfig {
            link_model: LinkModel::MutualRange,
            coverage_rule: CoverageRule::GiantComponentOnly,
        }
    }
}

/// A materialized network: mesh adjacency, components, and client coverage
/// for one (instance, placement) pair.
///
/// # Examples
///
/// ```
/// use wmn_graph::topology::{TopologyConfig, WmnTopology};
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(2);
/// let placement = instance.random_placement(&mut rng);
///
/// let topo = WmnTopology::build(&instance, &placement, TopologyConfig::paper_default())?;
/// assert!(topo.giant_size() >= 1);
/// assert!(topo.covered_count() <= instance.client_count());
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct WmnTopology {
    area: Area,
    config: TopologyConfig,
    positions: Vec<Point>,
    radii: Vec<f64>,
    max_radius: f64,
    /// Client-side spatial index. Clients never move, so the index is
    /// shared (`Arc`) between topologies of the same instance — state
    /// copies between population-pool members are a pointer clone.
    client_index: Arc<GridIndex>,
    /// Router-side mutable grid, kept in sync with `positions` on every
    /// move/swap so edge repair queries only nearby routers.
    router_index: DynamicGrid,
    adjacency: MeshAdjacency,
    components: Components,
    /// `giant_mask[i] == components.in_giant(i)`, maintained so the
    /// coverage delta can see *previous* membership during a move.
    giant_mask: Vec<bool>,
    /// Per-client count of counting routers whose disk holds the client.
    cover_count: Vec<u32>,
    covered: Vec<bool>,
    covered_count: usize,
    /// Per-router disk cache: the clients inside router `i`'s disk. Two
    /// invariants make coverage repair mostly query-free:
    ///
    /// * if router `i` is currently *counted* (its disk contributes to
    ///   `cover_count`), `disk_clients[i]` holds exactly the counted set —
    ///   so removals never re-query the client grid;
    /// * if `disk_cached[i]` is set, `disk_clients[i]` equals the clients
    ///   within `radii[i]` of the *current* `positions[i]` — so re-adding
    ///   an unmoved router's disk (a giant-membership flip) is free. The
    ///   bit is cleared whenever the router's position changes.
    ///
    /// The per-router client lists live in a [`NeighborSlab`] arena (u32
    /// client ids, one flat element array — see the
    /// [`arena`](crate::arena) module docs), so the population-pool state
    /// copy is a handful of bulk copies instead of one `Vec` clone per
    /// router.
    disk_clients: NeighborSlab,
    disk_cached: Vec<bool>,
    /// Connectivity repair strategy (see [`ConnectivityMode`]).
    connectivity_mode: ConnectivityMode,
    /// Degradation-ladder policy (see [`DegradationPolicy`]; all-zero =
    /// disabled). Configuration like the mode: travels with state copies.
    degradation: DegradationPolicy,
    scratch: MoveScratch,
}

/// Reusable per-move scratch state; all buffers reach steady-state capacity
/// after a handful of moves, making the hot loop allocation-free.
#[derive(Debug, Clone, Default)]
struct MoveScratch {
    uf: UnionFind,
    label_of_root: Vec<u32>,
    old_a: Vec<u32>,
    new_a: Vec<u32>,
    old_b: Vec<u32>,
    new_b: Vec<u32>,
    mask: Vec<bool>,
    batch: Vec<BatchEntry>,
    /// Epoch-stamped batch-membership marks: router `i` belongs to the
    /// current batch iff `moved_stamp[i] == move_epoch`. Starting a batch
    /// bumps the epoch instead of clearing the array (an O(n) fill only on
    /// the u32 wrap, every ~4 billion batches).
    moved_stamp: Vec<u32>,
    move_epoch: u32,
    /// Reusable disk-query buffer for cache-miss fills of the disk slab.
    disk_buf: Vec<u32>,
    /// The dynamic connectivity engine (pure scratch: component state
    /// lives in `components`, so copies never need to synchronize it).
    conn: DynamicConnectivity,
    /// Edge insert/delete streams of the current repair, produced by the
    /// old-vs-new neighbor diffs of the grid-local edge repair.
    ins_events: Vec<(u32, u32)>,
    del_events: Vec<(u32, u32)>,
    /// Always-on work counters of the delta-evaluation engine. Scratch,
    /// like the connectivity engine's: zeroed by `clone`, kept running by
    /// `clone_from` (so per-slot totals accumulate across a GA run).
    counters: TopologyStats,
    /// Degradation-ladder counters (audits, demotions); scratch like
    /// `counters`.
    degrade: DegradeStats,
    /// Per-phase buckets partitioning the batch-repair engine work
    /// (edge repair / component repair / coverage, see [`ApplyPhases`]);
    /// scratch like `counters`, and always-on for the same reason: the
    /// buckets are snapshots of counters the engine maintains anyway.
    phases: ApplyPhases,
    /// Repairs since the last partition audit.
    repairs_since_audit: u64,
    /// Consecutive deletion repairs that each hit the cost-cap fallback.
    fallback_streak: u64,
    /// `conn.stats().fallbacks` after the previous repair (streak
    /// detection).
    last_fallbacks: u64,
    /// `conn.stats().bfs_edge_visits` after the previous repair (a grown
    /// value without a fallback means a deletion search *succeeded*,
    /// which is what breaks a streak).
    last_bfs_visits: u64,
    /// Reference partition buffer for audits (lazily allocated).
    audit_components: Option<Components>,
}

/// One unique moved router of a batch application
/// ([`WmnTopology::apply_moves`]): whether its disk counted toward
/// coverage before and after the repair (its pre-batch counted client set
/// survives in the disk cache, so no pre-batch position is needed).
#[derive(Debug, Clone, Copy)]
struct BatchEntry {
    router: u32,
    counted_before: bool,
    counted_after: bool,
}

impl Clone for WmnTopology {
    fn clone(&self) -> Self {
        // Scratch state is not copied, but the connectivity cost-cap
        // override is configuration, not scratch — it travels like the
        // connectivity mode does.
        let mut scratch = MoveScratch::default();
        scratch
            .conn
            .set_cost_cap(self.scratch.conn.cost_cap_override());
        WmnTopology {
            area: self.area,
            config: self.config,
            positions: self.positions.clone(),
            radii: self.radii.clone(),
            max_radius: self.max_radius,
            client_index: self.client_index.clone(),
            router_index: self.router_index.clone(),
            adjacency: self.adjacency.clone(),
            components: self.components.clone(),
            giant_mask: self.giant_mask.clone(),
            cover_count: self.cover_count.clone(),
            covered: self.covered.clone(),
            covered_count: self.covered_count,
            disk_clients: self.disk_clients.clone(),
            disk_cached: self.disk_cached.clone(),
            connectivity_mode: self.connectivity_mode,
            degradation: self.degradation,
            scratch,
        }
    }

    /// Buffer-reusing state copy: `self` becomes an exact copy of `src`
    /// (scratch buffers are kept, they carry no observable state), reusing
    /// every allocation already held. This is the population-pool hot path:
    /// a GA child leases a topology, `clone_from`s its parent's, and
    /// repairs the placement delta through [`WmnTopology::apply_moves`] —
    /// no per-child topology allocation once the pool is warm.
    fn clone_from(&mut self, src: &Self) {
        self.scratch.counters.clone_from_reuses += 1;
        self.area = src.area;
        self.config = src.config;
        self.positions.clone_from(&src.positions);
        self.radii.clone_from(&src.radii);
        self.max_radius = src.max_radius;
        // Pointer copy: the client index is immutable and shared.
        self.client_index = Arc::clone(&src.client_index);
        self.router_index.clone_from(&src.router_index);
        self.adjacency.clone_from(&src.adjacency);
        self.components.clone_from(&src.components);
        self.giant_mask.clone_from(&src.giant_mask);
        self.cover_count.clone_from(&src.cover_count);
        self.covered.clone_from(&src.covered);
        self.covered_count = src.covered_count;
        self.disk_clients.clone_from(&src.disk_clients);
        self.disk_cached.clone_from(&src.disk_cached);
        self.connectivity_mode = src.connectivity_mode;
        self.degradation = src.degradation;
        self.scratch
            .conn
            .set_cost_cap(src.scratch.conn.cost_cap_override());
    }
}

impl WmnTopology {
    /// Builds the topology for `instance` with routers at `placement`.
    ///
    /// # Errors
    ///
    /// Propagates placement validation
    /// ([`ModelError`](wmn_model::ModelError)) — length mismatch or
    /// out-of-area positions.
    pub fn build(
        instance: &ProblemInstance,
        placement: &Placement,
        config: TopologyConfig,
    ) -> Result<WmnTopology, wmn_model::ModelError> {
        instance.validate_placement(placement)?;
        let area = instance.area();
        let positions: Vec<Point> = placement.as_slice().to_vec();
        let positions_len = positions.len();
        let radii: Vec<f64> = instance
            .routers()
            .iter()
            .map(|r| r.current_radius())
            .collect();
        let clients = instance.client_positions();
        // The id-width invariant: router and client ids are u32 throughout
        // the arena-backed storage (adjacency, disk caches, edge streams).
        if positions_len >= u32::MAX as usize || clients.len() >= u32::MAX as usize {
            return Err(wmn_model::ModelError::InvalidSpec {
                reason: format!(
                    "instance exceeds the u32 id space: {} routers / {} clients \
                     (at most {} of each supported)",
                    positions_len,
                    clients.len(),
                    u32::MAX - 1
                ),
            });
        }
        let max_radius = radii.iter().copied().fold(1.0_f64, f64::max);
        let client_index = Arc::new(GridIndex::build(&area, &clients, max_radius));
        let mut router_index =
            DynamicGrid::new(&area, config.link_model.grid_cell_size(max_radius));
        router_index.rebuild(&positions);
        let adjacency = MeshAdjacency::build(&area, &positions, &radii, config.link_model);
        let components = Components::from_adjacency(&adjacency);
        let mut topo = WmnTopology {
            area,
            config,
            positions,
            radii,
            max_radius,
            client_index,
            router_index,
            adjacency,
            components,
            giant_mask: Vec::new(),
            cover_count: vec![0; clients.len()],
            covered: vec![false; clients.len()],
            covered_count: 0,
            disk_clients: NeighborSlab::with_nodes(positions_len),
            disk_cached: vec![false; positions_len],
            connectivity_mode: ConnectivityMode::default(),
            degradation: DegradationPolicy::default(),
            scratch: MoveScratch::default(),
        };
        topo.refresh_giant_mask();
        topo.recompute_coverage();
        Ok(topo)
    }

    /// Repositions every router according to `placement` (which must have
    /// the right length and lie inside the area — callers validate against
    /// the instance) and rebuilds all derived state **in place**, reusing
    /// every buffer. This is the workspace path behind
    /// `Evaluator::evaluate_with`: evaluating a stream of unrelated
    /// placements without re-allocating a topology per candidate.
    ///
    /// # Panics
    ///
    /// Panics if `placement.len()` differs from the router count.
    pub fn reset_placement(&mut self, placement: &Placement) {
        assert_eq!(
            placement.len(),
            self.positions.len(),
            "placement length must match router count"
        );
        self.scratch.counters.full_rebuilds += 1;
        self.positions.copy_from_slice(placement.as_slice());
        self.disk_cached.fill(false);
        self.router_index.rebuild(&self.positions);
        self.adjacency.rebuild_in_place(
            &self.positions,
            &self.radii,
            self.config.link_model,
            &self.router_index,
        );
        self.components.rebuild_incremental(
            &self.adjacency,
            &mut self.scratch.uf,
            &mut self.scratch.label_of_root,
        );
        self.refresh_giant_mask();
        self.recompute_coverage();
    }

    /// The active configuration.
    pub fn config(&self) -> TopologyConfig {
        self.config
    }

    /// The deployment area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.covered.len()
    }

    /// Current position of router `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: RouterId) -> Point {
        self.positions[id.index()]
    }

    /// Current radius of router `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn radius(&self, id: RouterId) -> f64 {
        self.radii[id.index()]
    }

    /// All current router positions, as a [`Placement`].
    pub fn placement(&self) -> Placement {
        Placement::from_points(self.positions.clone())
    }

    /// The router mesh adjacency.
    pub fn adjacency(&self) -> &MeshAdjacency {
        &self.adjacency
    }

    /// The component structure.
    pub fn components(&self) -> &Components {
        &self.components
    }

    /// Size of the giant component — the paper's connectivity objective.
    pub fn giant_size(&self) -> usize {
        self.components.giant_size()
    }

    /// Number of covered clients — the paper's user-coverage objective.
    pub fn covered_count(&self) -> usize {
        self.covered_count
    }

    /// Per-client coverage mask.
    pub fn covered_mask(&self) -> &[bool] {
        &self.covered
    }

    /// The client positions this topology was built against (fixed per
    /// instance). Lets workspace reuse verify a topology still matches an
    /// instance without rebuilding.
    pub fn client_points(&self) -> &[Point] {
        self.client_index.points()
    }

    /// Returns `true` if router `id` is in the giant component.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn in_giant(&self, id: RouterId) -> bool {
        self.components.in_giant(id.index())
    }

    /// Switches between the incremental engine (default) and the
    /// full-rebuild reference path: when `full` is set, every
    /// [`move_router`](WmnTopology::move_router) /
    /// [`swap_routers`](WmnTopology::swap_routers) runs
    /// [`rebuild_full`](WmnTopology::rebuild_full) instead of the delta
    /// path. Results are bit-identical either way (verified by the
    /// equivalence suites); the `ablation_move_eval` bench measures the
    /// gap. Shorthand for
    /// [`set_connectivity_mode`](WmnTopology::set_connectivity_mode) with
    /// [`ConnectivityMode::FullRebuild`] / [`ConnectivityMode::Dynamic`].
    pub fn set_rebuild_mode(&mut self, full: bool) {
        self.connectivity_mode = if full {
            ConnectivityMode::FullRebuild
        } else {
            ConnectivityMode::Dynamic
        };
    }

    /// Returns `true` when every move performs a full rebuild (see
    /// [`set_rebuild_mode`](WmnTopology::set_rebuild_mode)).
    pub fn rebuild_mode(&self) -> bool {
        self.connectivity_mode == ConnectivityMode::FullRebuild
    }

    /// Selects the connectivity repair strategy (see [`ConnectivityMode`];
    /// results are bit-identical in every mode). The mode travels with
    /// state copies ([`Clone::clone_from`]), so a population pool seeded
    /// from pinned parents stays pinned.
    pub fn set_connectivity_mode(&mut self, mode: ConnectivityMode) {
        self.connectivity_mode = mode;
    }

    /// The active connectivity repair strategy.
    pub fn connectivity_mode(&self) -> ConnectivityMode {
        self.connectivity_mode
    }

    /// Cumulative counters of this topology's dynamic connectivity engine
    /// (zeroed on construction and on `clone`; scratch state, so
    /// `clone_from` leaves them running).
    pub fn connectivity_stats(&self) -> ConnectivityStats {
        self.scratch.conn.stats()
    }

    /// The unified work profile of this topology's evaluation engine:
    /// topology-level counters (moves, coverage strategy, disk caches)
    /// plus the connectivity engine's. Like
    /// [`connectivity_stats`](WmnTopology::connectivity_stats), the
    /// counters are scratch state — zeroed on construction and `clone`,
    /// kept running by `clone_from` — and deterministic for a fixed seed
    /// at any thread count.
    pub fn engine_stats(&self) -> EngineStats {
        let mut stats = EngineStats::new(self.scratch.counters, self.scratch.conn.stats());
        stats.degrade = self.scratch.degrade;
        stats
    }

    /// The per-phase buckets partitioning the engine work done *inside*
    /// batch repairs ([`apply_moves`](WmnTopology::apply_moves) with ≥ 2
    /// distinct routers): edge repair, component repair, coverage, and
    /// the `FullRebuild`-mode escape hatch. Buckets are scratch state
    /// with the same lifecycle as [`engine_stats`]
    /// (WmnTopology::engine_stats) — zeroed on construction and `clone`,
    /// kept running by `clone_from` — and always sum to at most the
    /// engine-stats totals; the difference is work done outside batch
    /// repairs (single moves, `clone_from` copies, `reset_placement`).
    pub fn apply_phases(&self) -> ApplyPhases {
        self.scratch.phases
    }

    /// Zeroes every engine counter (topology, connectivity, degradation)
    /// and the per-phase batch-repair buckets, starting a fresh
    /// measurement window — per-generation or per-phase deltas without
    /// lifetime bookkeeping.
    pub fn reset_engine_stats(&mut self) {
        self.scratch.counters.reset();
        self.scratch.conn.reset_stats();
        self.scratch.degrade.reset();
        self.scratch.phases.reset();
    }

    /// Arms (or, with the all-zero default, disarms) the connectivity
    /// degradation ladder — see [`DegradationPolicy`]. Like the
    /// connectivity mode, the policy travels with state copies
    /// (`clone` / `clone_from`); the ladder's streak/audit bookkeeping is
    /// scratch and starts fresh in a `clone`.
    pub fn set_degradation_policy(&mut self, policy: DegradationPolicy) {
        self.degradation = policy;
    }

    /// The active degradation-ladder policy.
    pub fn degradation_policy(&self) -> DegradationPolicy {
        self.degradation
    }

    /// Forces one demotion down the ladder
    /// (`Dynamic → DsuRescan → FullRebuild`; a no-op at the bottom),
    /// exactly as an audit failure would. Exposed for tests exercising
    /// the lower rungs without having to corrupt the partition first.
    #[doc(hidden)]
    pub fn degrade_one_rung(&mut self) {
        match self.connectivity_mode {
            ConnectivityMode::Dynamic => {
                self.connectivity_mode = ConnectivityMode::DsuRescan;
                self.scratch.degrade.demotions_to_rescan += 1;
            }
            ConnectivityMode::DsuRescan => {
                self.connectivity_mode = ConnectivityMode::FullRebuild;
                self.scratch.degrade.demotions_to_full += 1;
            }
            ConnectivityMode::FullRebuild => {}
        }
    }

    /// Overrides the dynamic engine's per-deletion edge-visit budget
    /// (`None` restores the default; `Some(0)` forces the whole-graph
    /// rescan fallback on every deletion that requires a search — see
    /// [`DynamicConnectivity::set_cost_cap`]). Like the connectivity
    /// mode, the override travels with state copies (`clone` /
    /// `clone_from`), so pinned population pools stay pinned.
    pub fn set_connectivity_cost_cap(&mut self, cap: Option<usize>) {
        self.scratch.conn.set_cost_cap(cap);
    }

    /// Whether router `i`'s disk currently counts toward client coverage,
    /// per the *current* `giant_mask`.
    #[inline]
    fn is_counted(&self, i: usize) -> bool {
        match self.config.coverage_rule {
            CoverageRule::GiantComponentOnly => self.giant_mask[i],
            CoverageRule::AnyRouter => true,
        }
    }

    fn refresh_giant_mask(&mut self) {
        let n = self.positions.len();
        self.giant_mask.clear();
        self.giant_mask
            .extend((0..n).map(|i| self.components.in_giant(i)));
    }

    /// Adds router `i`'s disk (at its **current** position) to the
    /// per-client cover counts, flipping `covered` bits and the covered
    /// total at 0→1 transitions. Uses the positionally-valid disk cache
    /// when available and (re)fills it otherwise, so re-adding an unmoved
    /// router's disk — a giant-membership flip — performs no grid query.
    fn disk_add(&mut self, i: usize) {
        self.disk_add_from(i, None);
    }

    /// [`disk_add`](WmnTopology::disk_add) with a donor: on a cache miss,
    /// a donor topology holding router `i` at the **same position** (same
    /// instance — the caller verifies the shared client index) donates its
    /// cached disk instead of a grid query. This is the crossover-child
    /// path: a moved gene's target position is verbatim the other parent's,
    /// whose cache holds exactly the right client set.
    fn disk_add_from(&mut self, i: usize, donor: Option<&WmnTopology>) {
        let WmnTopology {
            client_index,
            cover_count,
            covered,
            covered_count,
            positions,
            radii,
            disk_clients,
            disk_cached,
            scratch,
            ..
        } = self;
        if !disk_cached[i] {
            match donor.filter(|d| d.disk_cached[i] && d.positions[i] == positions[i]) {
                Some(d) => {
                    scratch.counters.disk_cache_grafts += 1;
                    disk_clients.assign(i, d.disk_clients.get(i));
                }
                None => {
                    scratch.counters.disk_grid_queries += 1;
                    client_index.within_radius_into(positions[i], radii[i], &mut scratch.disk_buf);
                    disk_clients.assign(i, &scratch.disk_buf);
                }
            }
            disk_cached[i] = true;
        } else {
            scratch.counters.disk_cache_hits += 1;
        }
        for &c in disk_clients.get(i) {
            let c = c as usize;
            cover_count[c] += 1;
            if cover_count[c] == 1 {
                covered[c] = true;
                *covered_count += 1;
            }
        }
    }

    /// Removes router `i`'s **counted** disk from the per-client cover
    /// counts through the disk cache — no grid query, no distance checks
    /// (the counted-disk invariant guarantees the cache holds exactly the
    /// counted set, even after the router has moved).
    fn disk_remove(&mut self, i: usize) {
        let WmnTopology {
            cover_count,
            covered,
            covered_count,
            disk_clients,
            ..
        } = self;
        for &c in disk_clients.get(i) {
            let c = c as usize;
            debug_assert!(cover_count[c] > 0, "cover count underflow");
            cover_count[c] -= 1;
            if cover_count[c] == 0 {
                covered[c] = false;
                *covered_count -= 1;
            }
        }
    }

    /// Full coverage recomputation, in place: rebuilds cover counts, the
    /// covered mask, and the covered total (maintained incrementally as
    /// bits flip — no trailing count scan) from the current `giant_mask`,
    /// re-querying only routers whose disk cache is positionally stale.
    fn recompute_coverage(&mut self) {
        self.recompute_coverage_from(None);
    }

    /// [`recompute_coverage`](WmnTopology::recompute_coverage) with an
    /// optional disk-cache donor (see
    /// [`apply_moves_from`](WmnTopology::apply_moves_from)).
    fn recompute_coverage_from(&mut self, donor: Option<&WmnTopology>) {
        self.scratch.counters.coverage_full_recomputes += 1;
        self.cover_count.fill(0);
        self.covered.fill(false);
        self.covered_count = 0;
        for i in 0..self.positions.len() {
            if self.is_counted(i) {
                self.disk_add_from(i, donor);
            }
        }
    }

    /// Re-derives router `i`'s edges from the router-side grid, writing the
    /// previous (sorted) neighbor set into `old` and the new one into
    /// `new`. Allocation-free once the buffers are warm.
    fn recompute_router_edges_into(&mut self, i: usize, old: &mut Vec<u32>, new: &mut Vec<u32>) {
        old.clear();
        old.extend_from_slice(self.adjacency.neighbors(i));
        new.clear();
        let model = self.config.link_model;
        let pi = self.positions[i];
        let ri = self.radii[i];
        let query_r = model.max_link_range(ri, self.max_radius);
        let positions = &self.positions;
        let radii = &self.radii;
        self.router_index.for_each_candidate(pi, query_r, |j| {
            if j == i {
                return;
            }
            let d2 = pi.distance_squared(positions[j]);
            if model.links(d2, ri, radii[j]) {
                new.push(j as u32);
            }
        });
        new.sort_unstable();
        // Unchanged lists skip the slab entirely; changed ones pay only for
        // the edge delta (the merge-diff inside `replace_node_edges`).
        if old != new {
            self.adjacency.replace_node_edges(i, old, new);
        }
    }

    /// Resets the per-repair edge-event streams; every mutation entry
    /// point calls this before its first edge repair so stale events can
    /// never leak across operations (or across mode switches).
    fn begin_edge_recording(&mut self) {
        self.scratch.ins_events.clear();
        self.scratch.del_events.clear();
    }

    /// Records the edge insert/delete events implied by one router's
    /// old-vs-new sorted neighbor lists (a linear merge-diff), feeding the
    /// dynamic connectivity engine. A no-op outside
    /// [`ConnectivityMode::Dynamic`].
    fn record_edge_diff(&mut self, i: usize, old: &[u32], new: &[u32]) {
        if self.connectivity_mode != ConnectivityMode::Dynamic {
            return;
        }
        let MoveScratch {
            ins_events,
            del_events,
            ..
        } = &mut self.scratch;
        let i = i as u32;
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            match (old.get(a), new.get(b)) {
                (Some(&x), Some(&y)) if x == y => {
                    a += 1;
                    b += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    del_events.push((i, x));
                    a += 1;
                }
                (Some(_), Some(&y)) => {
                    ins_events.push((i, y));
                    b += 1;
                }
                (Some(&x), None) => {
                    del_events.push((i, x));
                    a += 1;
                }
                (None, Some(&y)) => {
                    ins_events.push((i, y));
                    b += 1;
                }
                (None, None) => break,
            }
        }
    }

    /// Repairs `components` for the current adjacency: component-locally
    /// through the dynamic engine (consuming the recorded edge events)
    /// under [`ConnectivityMode::Dynamic`], or by the whole-graph
    /// union–find rescan under [`ConnectivityMode::DsuRescan`]. Returns
    /// `true` when the component partition is **provably unchanged** (the
    /// dynamic engine's [`RepairOutcome::Unchanged`]) — the giant mask is
    /// then current as-is and the membership-diff pass can be skipped.
    fn repair_components(&mut self) -> bool {
        let unchanged = match self.connectivity_mode {
            ConnectivityMode::Dynamic => {
                let MoveScratch {
                    uf,
                    label_of_root,
                    conn,
                    ins_events,
                    del_events,
                    ..
                } = &mut self.scratch;
                conn.apply_edge_diff(
                    &self.adjacency,
                    &mut self.components,
                    ins_events,
                    del_events,
                    uf,
                    label_of_root,
                ) == RepairOutcome::Unchanged
            }
            ConnectivityMode::DsuRescan | ConnectivityMode::FullRebuild => {
                let MoveScratch {
                    uf, label_of_root, ..
                } = &mut self.scratch;
                self.components
                    .rebuild_incremental(&self.adjacency, uf, label_of_root);
                false
            }
        };
        if self.degradation == DegradationPolicy::default() {
            return unchanged;
        }
        let audit_repaired = self.run_degradation_ladder();
        unchanged && !audit_repaired
    }

    /// The degradation ladder's per-repair hook: streak detection plus the
    /// periodic partition audit. Returns `true` when an audit found — and
    /// repaired — a divergent partition (the caller must then treat the
    /// repair as "changed" so masks get rebuilt).
    fn run_degradation_ladder(&mut self) -> bool {
        let policy = self.degradation;
        if policy.fallback_streak_limit > 0 && self.connectivity_mode == ConnectivityMode::Dynamic {
            let stats = self.scratch.conn.stats();
            // Streak bookkeeping over repairs that exercised deletion
            // handling: a fallback extends the streak, a *successful*
            // search (visits grew, no fallback) breaks it, and repairs
            // with no deletion work are neutral.
            let fell_back = stats.fallbacks > self.scratch.last_fallbacks;
            let searched = stats.bfs_edge_visits > self.scratch.last_bfs_visits;
            self.scratch.last_fallbacks = stats.fallbacks;
            self.scratch.last_bfs_visits = stats.bfs_edge_visits;
            if fell_back {
                self.scratch.fallback_streak += 1;
            } else if searched {
                self.scratch.fallback_streak = 0;
            }
            if self.scratch.fallback_streak >= policy.fallback_streak_limit {
                // Paying a whole-graph rescan per repair anyway: the
                // dynamic bookkeeping is pure overhead, demote past it.
                self.degrade_one_rung();
                self.scratch.fallback_streak = 0;
            }
        }
        if policy.audit_every == 0 {
            return false;
        }
        self.scratch.repairs_since_audit += 1;
        if self.scratch.repairs_since_audit < policy.audit_every {
            return false;
        }
        self.scratch.repairs_since_audit = 0;
        self.audit_partition()
    }

    /// Recomputes the component partition from the adjacency by the
    /// whole-graph union–find rescan and compares it with the engine's
    /// (labels are canonical in every mode, so `==` is the right check).
    /// On divergence: adopt the reference partition, demote one rung, and
    /// report `true`.
    fn audit_partition(&mut self) -> bool {
        let MoveScratch {
            uf,
            label_of_root,
            degrade,
            audit_components,
            ..
        } = &mut self.scratch;
        degrade.audits += 1;
        let reference = audit_components.get_or_insert_with(|| self.components.clone());
        reference.rebuild_incremental(&self.adjacency, uf, label_of_root);
        if *reference == self.components {
            return false;
        }
        degrade.audit_failures += 1;
        std::mem::swap(&mut self.components, reference);
        self.degrade_one_rung();
        true
    }

    /// Repairs components (per the connectivity mode) and writes the fresh
    /// giant mask into `scratch.mask`. Returns `true` when any router
    /// **other than** `moved_a`/`moved_b` changed giant membership — the
    /// coverage fallback trigger.
    fn rebuild_components_incremental(&mut self, moved_a: usize, moved_b: usize) -> bool {
        let unchanged = self.repair_components();
        let mask = &mut self.scratch.mask;
        if unchanged {
            // Partition untouched: the mask is the current one, no
            // membership diff to scan for.
            mask.clone_from(&self.giant_mask);
            return false;
        }
        let n = self.positions.len();
        mask.clear();
        let mut others_changed = false;
        for (j, &was) in self.giant_mask.iter().enumerate().take(n) {
            let is = self.components.in_giant(j);
            mask.push(is);
            if is != was && j != moved_a && j != moved_b {
                others_changed = true;
            }
        }
        others_changed
    }

    /// Moves router `id` to `new_position` and repairs the network
    /// incrementally ("re-establish mesh nodes network connections"):
    /// grid-local edge repair, scratch-buffer connectivity, and delta
    /// coverage — see the module docs for the invariants and when the full
    /// fallback triggers.
    ///
    /// Returns the previous position, so callers can undo the move by
    /// moving back.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range. The position is clamped into the
    /// deployment area.
    pub fn move_router(&mut self, id: RouterId, new_position: Point) -> Point {
        self.scratch.counters.single_moves += 1;
        let i = id.index();
        let old = self.positions[i];
        let new = self.area.clamp_point(new_position);
        self.positions[i] = new;
        self.disk_cached[i] = false;
        self.router_index.relocate(i, old, new);
        if self.connectivity_mode == ConnectivityMode::FullRebuild {
            self.rebuild_full();
            return old;
        }

        self.begin_edge_recording();
        let mut old_n = std::mem::take(&mut self.scratch.old_a);
        let mut new_n = std::mem::take(&mut self.scratch.new_a);
        self.recompute_router_edges_into(i, &mut old_n, &mut new_n);
        self.record_edge_diff(i, &old_n, &new_n);
        let links_changed = old_n != new_n;
        self.scratch.old_a = old_n;
        self.scratch.new_a = new_n;

        if !links_changed {
            // Identical graph ⇒ identical components and membership; only
            // the moved disk needs re-counting.
            self.scratch.counters.link_noop_repairs += 1;
            if self.is_counted(i) {
                self.disk_remove(i);
                self.disk_add(i);
            }
            return old;
        }

        let counted_before = self.is_counted(i);
        let others_changed = self.rebuild_components_incremental(i, i);
        match self.config.coverage_rule {
            CoverageRule::AnyRouter => {
                self.scratch.counters.coverage_delta_repairs += 1;
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                self.disk_remove(i);
                self.disk_add(i);
            }
            CoverageRule::GiantComponentOnly if others_changed => {
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                self.recompute_coverage();
            }
            CoverageRule::GiantComponentOnly => {
                self.scratch.counters.coverage_delta_repairs += 1;
                let counted_after = self.scratch.mask[i];
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                if counted_before {
                    self.disk_remove(i);
                }
                if counted_after {
                    self.disk_add(i);
                }
            }
        }
        old
    }

    /// Exchanges the positions of two routers (the paper's swap movement)
    /// and repairs the network incrementally, exactly like
    /// [`move_router`](WmnTopology::move_router) but with two moved disks.
    /// Swapping a router with itself is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn swap_routers(&mut self, a: RouterId, b: RouterId) {
        if a == b {
            return;
        }
        self.scratch.counters.swaps += 1;
        let (ia, ib) = (a.index(), b.index());
        let (pa, pb) = (self.positions[ia], self.positions[ib]);
        self.positions.swap(ia, ib);
        self.disk_cached[ia] = false;
        self.disk_cached[ib] = false;
        self.router_index.relocate(ia, pa, pb);
        self.router_index.relocate(ib, pb, pa);
        if self.connectivity_mode == ConnectivityMode::FullRebuild {
            self.rebuild_full();
            return;
        }

        self.begin_edge_recording();
        let mut old_a = std::mem::take(&mut self.scratch.old_a);
        let mut new_a = std::mem::take(&mut self.scratch.new_a);
        let mut old_b = std::mem::take(&mut self.scratch.old_b);
        let mut new_b = std::mem::take(&mut self.scratch.new_b);
        self.recompute_router_edges_into(ia, &mut old_a, &mut new_a);
        self.record_edge_diff(ia, &old_a, &new_a);
        self.recompute_router_edges_into(ib, &mut old_b, &mut new_b);
        self.record_edge_diff(ib, &old_b, &new_b);
        // If `ia`'s repair was a no-op, `old_b` reflects the pre-swap graph,
        // so both comparisons together certify the graph is unchanged.
        let links_changed = old_a != new_a || old_b != new_b;
        self.scratch.old_a = old_a;
        self.scratch.new_a = new_a;
        self.scratch.old_b = old_b;
        self.scratch.new_b = new_b;

        // Radii travel with the router id: `a` now sits at `pb`, `b` at
        // `pa`; each disk cache still holds its router's pre-swap counted
        // set, so removals stay query-free.
        if !links_changed {
            self.scratch.counters.link_noop_repairs += 1;
            if self.is_counted(ia) {
                self.disk_remove(ia);
                self.disk_add(ia);
            }
            if self.is_counted(ib) {
                self.disk_remove(ib);
                self.disk_add(ib);
            }
            return;
        }

        let counted_before_a = self.is_counted(ia);
        let counted_before_b = self.is_counted(ib);
        let others_changed = self.rebuild_components_incremental(ia, ib);
        match self.config.coverage_rule {
            CoverageRule::AnyRouter => {
                self.scratch.counters.coverage_delta_repairs += 1;
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                self.disk_remove(ia);
                self.disk_add(ia);
                self.disk_remove(ib);
                self.disk_add(ib);
            }
            CoverageRule::GiantComponentOnly if others_changed => {
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                self.recompute_coverage();
            }
            CoverageRule::GiantComponentOnly => {
                self.scratch.counters.coverage_delta_repairs += 1;
                let counted_after_a = self.scratch.mask[ia];
                let counted_after_b = self.scratch.mask[ib];
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                if counted_before_a {
                    self.disk_remove(ia);
                }
                if counted_after_a {
                    self.disk_add(ia);
                }
                if counted_before_b {
                    self.disk_remove(ib);
                }
                if counted_after_b {
                    self.disk_add(ib);
                }
            }
        }
    }

    /// Writes the per-router relocations that morph this topology's current
    /// placement into `target` — one `(router, target position)` entry per
    /// router whose position differs — into `out` (cleared first). Feeding
    /// the result to [`apply_moves`](WmnTopology::apply_moves) is the
    /// delta-evaluation path for population-based search: a GA child is
    /// evaluated as "parent topology + diff" instead of a full rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `target.len()` differs from the router count.
    pub fn diff_placement_into(&self, target: &Placement, out: &mut Vec<(RouterId, Point)>) {
        assert_eq!(
            target.len(),
            self.positions.len(),
            "target placement length must match router count"
        );
        out.clear();
        for (i, (cur, want)) in self.positions.iter().zip(target.as_slice()).enumerate() {
            if cur != want {
                out.push((RouterId(i), *want));
            }
        }
    }

    /// Applies a batch of router relocations with a **single** repair pass:
    /// all positions (clamped into the area) and grid buckets are updated
    /// first, then each unique moved router's edges are re-derived
    /// grid-locally, and connectivity + coverage are repaired **once** —
    /// instead of once per move as a [`move_router`](WmnTopology::move_router)
    /// loop would. This is the batch path population-based methods use for
    /// multi-gene deltas (GA crossover/mutation diffs).
    ///
    /// Semantics are exactly "set each listed router to its target
    /// position": later entries for the same router win, an empty batch is
    /// a no-op, and a single-entry batch delegates to `move_router` (so it
    /// keeps that path's early-outs). The resulting state is identical to a
    /// full rebuild at the final positions (pinned by tests); undoing is
    /// applying the inverse batch of previous positions.
    ///
    /// # Panics
    ///
    /// Panics if any router id is out of range.
    pub fn apply_moves(&mut self, moves: &[(RouterId, Point)]) {
        self.apply_moves_from(moves, None);
    }

    /// [`apply_moves`](WmnTopology::apply_moves) with a coverage **donor**:
    /// when a moved router's target position matches the donor's current
    /// position for the same router, the donor's cached disk is copied
    /// instead of re-queried from the client grid. This is the
    /// crossover-child evaluation path — the recombined genes' targets are
    /// verbatim the other parent's positions, so their disks come for
    /// free. A donor of a different instance (different client index or
    /// router count) is ignored; results are identical with or without a
    /// donor (pinned by tests), only the query count differs.
    ///
    /// # Panics
    ///
    /// Panics if any router id is out of range.
    pub fn apply_moves_from(&mut self, moves: &[(RouterId, Point)], donor: Option<&WmnTopology>) {
        let donor = donor.filter(|d| {
            // Same instance: the shared-Arc check catches topologies related
            // by adoption (the steady-state GA population); the structural
            // fallback admits independently built topologies of the same
            // instance (a first generation after `evaluate_initial`, or any
            // caller-assembled population), whose grafts are just as valid.
            (Arc::ptr_eq(&d.client_index, &self.client_index)
                || d.client_index == self.client_index)
                && d.positions.len() == self.positions.len()
                && d.radii == self.radii
        });
        match moves {
            [] => return,
            [(id, to)] => {
                self.move_router(*id, *to);
                return;
            }
            _ => {}
        }
        // Section boundaries of the phase buckets: every engine counter
        // incremented between two snapshots is attributed to the section
        // that ran in between (`scratch.phases`). The snapshots are Copy
        // struct reads, amortized over the whole batch repair.
        let section_start = self.engine_stats();
        // Record each unique moved router with its pre-batch position while
        // updating positions and grid buckets in order; the epoch-stamped
        // `moved_stamp` array is both the O(1) dedup test here and the
        // batch-membership mask the component rebuild reads later — a new
        // batch bumps `move_epoch` instead of clearing the stamps.
        let mut batch = std::mem::take(&mut self.scratch.batch);
        batch.clear();
        if self.scratch.moved_stamp.len() != self.positions.len() {
            self.scratch.moved_stamp.clear();
            self.scratch.moved_stamp.resize(self.positions.len(), 0);
            self.scratch.move_epoch = 0;
        }
        if self.scratch.move_epoch == u32::MAX {
            self.scratch.moved_stamp.fill(0);
            self.scratch.move_epoch = 0;
        }
        self.scratch.move_epoch += 1;
        let epoch = self.scratch.move_epoch;
        for &(id, to) in moves {
            let i = id.index();
            let old = self.positions[i];
            let new = self.area.clamp_point(to);
            self.positions[i] = new;
            self.disk_cached[i] = false;
            self.router_index.relocate(i, old, new);
            if self.scratch.moved_stamp[i] != epoch {
                self.scratch.moved_stamp[i] = epoch;
                batch.push(BatchEntry {
                    router: i as u32,
                    counted_before: false,
                    counted_after: false,
                });
            }
        }
        self.scratch.counters.batch_repairs += 1;
        self.scratch.counters.batch_moved_routers += batch.len() as u64;
        if self.connectivity_mode == ConnectivityMode::FullRebuild {
            self.scratch.batch = batch;
            self.rebuild_full();
            let delta = self.engine_stats().delta_since(&section_start);
            self.scratch.phases.full_rebuild.merge(&delta);
            return;
        }

        // One grid-local edge repair per unique moved router, against the
        // final positions. Any edge change is incident to a moved router
        // and shows up in at least one old-vs-new comparison (a repair by
        // an earlier-processed moved router that alters a later one's list
        // is caught by the earlier router's own comparison) — so the
        // recorded insert/delete streams carry each changed edge exactly
        // once.
        self.begin_edge_recording();
        let mut old_n = std::mem::take(&mut self.scratch.old_a);
        let mut new_n = std::mem::take(&mut self.scratch.new_a);
        let mut links_changed = false;
        for e in &batch {
            self.recompute_router_edges_into(e.router as usize, &mut old_n, &mut new_n);
            self.record_edge_diff(e.router as usize, &old_n, &new_n);
            links_changed |= old_n != new_n;
        }
        self.scratch.old_a = old_n;
        self.scratch.new_a = new_n;
        let after_edges = self.engine_stats();
        let edge_delta = after_edges.delta_since(&section_start);
        self.scratch.phases.edge_repair.merge(&edge_delta);

        if !links_changed {
            // Identical graph ⇒ identical components and membership; only
            // the moved disks need re-counting.
            self.scratch.counters.link_noop_repairs += 1;
            for &BatchEntry { router: i, .. } in &batch {
                let i = i as usize;
                if self.is_counted(i) {
                    self.disk_remove(i);
                    self.disk_add_from(i, donor);
                }
            }
            self.scratch.batch = batch;
            let delta = self.engine_stats().delta_since(&after_edges);
            self.scratch.phases.coverage.merge(&delta);
            return;
        }

        for e in &mut batch {
            e.counted_before = self.is_counted(e.router as usize);
        }
        let flipped_others = self.rebuild_components_incremental_batch();
        let after_components = self.engine_stats();
        let component_delta = after_components.delta_since(&after_edges);
        self.scratch.phases.component_repair.merge(&component_delta);
        match self.config.coverage_rule {
            CoverageRule::AnyRouter => {
                // Membership is irrelevant: only the moved disks changed.
                self.scratch.counters.coverage_delta_repairs += 1;
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                for &BatchEntry { router: i, .. } in &batch {
                    self.disk_remove(i as usize);
                    self.disk_add_from(i as usize, donor);
                }
            }
            CoverageRule::GiantComponentOnly => {
                for e in &mut batch {
                    e.counted_after = self.scratch.mask[e.router as usize];
                }
                // Disk-op budget of the exact delta repair (moved disks
                // plus the non-moved routers whose membership flipped) vs
                // the one full in-place pass (every counting router's
                // disk). Cover counts commute, so both paths land the
                // identical state; pick the cheaper one.
                let moved_ops: usize = batch
                    .iter()
                    .map(|e| usize::from(e.counted_before) + usize::from(e.counted_after))
                    .sum();
                let full_ops = self.components.giant_size();
                std::mem::swap(&mut self.giant_mask, &mut self.scratch.mask);
                if flipped_others + moved_ops <= full_ops {
                    self.scratch.counters.coverage_delta_repairs += 1;
                    // Exact delta: removals first, then additions (grouped
                    // passes; order is irrelevant for counts).
                    // `scratch.mask` holds the *previous* membership,
                    // `giant_mask` the new one. Removals and flip-offs run
                    // off the disk caches; flip-ons of never-moved routers
                    // usually hit a positionally-valid cache too.
                    for &e in &batch {
                        if e.counted_before {
                            self.disk_remove(e.router as usize);
                        }
                    }
                    if flipped_others > 0 {
                        let old_mask = std::mem::take(&mut self.scratch.mask);
                        let stamps = std::mem::take(&mut self.scratch.moved_stamp);
                        let epoch = self.scratch.move_epoch;
                        for j in 0..self.positions.len() {
                            if stamps[j] != epoch && old_mask[j] && !self.giant_mask[j] {
                                self.disk_remove(j);
                            }
                        }
                        for j in 0..self.positions.len() {
                            if stamps[j] != epoch && !old_mask[j] && self.giant_mask[j] {
                                self.disk_add(j);
                            }
                        }
                        self.scratch.mask = old_mask;
                        self.scratch.moved_stamp = stamps;
                    }
                    for &e in &batch {
                        if e.counted_after {
                            self.disk_add_from(e.router as usize, donor);
                        }
                    }
                } else {
                    self.recompute_coverage_from(donor);
                }
            }
        }
        self.scratch.batch = batch;
        let delta = self.engine_stats().delta_since(&after_components);
        self.scratch.phases.coverage.merge(&delta);
    }

    /// Like [`rebuild_components_incremental`]
    /// (WmnTopology::rebuild_components_incremental) but for a batch:
    /// returns how many routers **outside** the batch changed giant
    /// membership (the flip count steering the coverage-repair choice).
    /// Expects `scratch.moved_stamp` to carry the current `move_epoch` on
    /// exactly the batch's routers — the membership mask
    /// [`apply_moves`](WmnTopology::apply_moves) stamped while deduplicating.
    fn rebuild_components_incremental_batch(&mut self) -> usize {
        let unchanged = self.repair_components();
        let n = self.positions.len();
        let MoveScratch {
            mask,
            moved_stamp,
            move_epoch,
            ..
        } = &mut self.scratch;
        if unchanged {
            mask.clone_from(&self.giant_mask);
            return 0;
        }
        mask.clear();
        let mut flipped_others = 0;
        for (j, &was) in self.giant_mask.iter().enumerate().take(n) {
            let is = self.components.in_giant(j);
            mask.push(is);
            if is != was && moved_stamp[j] != *move_epoch {
                flipped_others += 1;
            }
        }
        flipped_others
    }

    /// Rebuilds the router grid, adjacency, components, and coverage from
    /// scratch. The reference path: tests, the rebuild-mode baseline, and
    /// the `ablation_move_eval` bench run it to pin the incremental engine.
    pub fn rebuild_full(&mut self) {
        self.scratch.counters.full_rebuilds += 1;
        self.router_index.rebuild(&self.positions);
        self.adjacency = MeshAdjacency::build(
            &self.area,
            &self.positions,
            &self.radii,
            self.config.link_model,
        );
        self.components = Components::from_adjacency(&self.adjacency);
        self.refresh_giant_mask();
        self.recompute_coverage();
    }

    /// Debug helper: asserts the incremental state — adjacency, components,
    /// giant mask, cover counts, covered mask, covered total, and the
    /// router-side grid — equals a fresh rebuild.
    ///
    /// # Panics
    ///
    /// Panics when the incremental state has drifted from the ground truth.
    pub fn assert_consistent(&self) {
        self.router_index.assert_in_sync(&self.positions);
        // Arena invariants: span bounds, free-list integrity, and exact
        // tiling of the slab data for both neighbor storage arenas.
        self.adjacency.assert_arena_invariants();
        self.disk_clients.assert_invariants();
        // Disk-cache invariants: a positionally-valid cache — and any
        // counted router's cache — must hold exactly the clients of the
        // router's current disk.
        for i in 0..self.positions.len() {
            if !self.disk_cached[i] && !self.is_counted(i) {
                continue;
            }
            let mut expect: Vec<u32> = self
                .client_index
                .within_radius(self.positions[i], self.radii[i])
                .map(|c| c as u32)
                .collect();
            expect.sort_unstable();
            let mut got = self.disk_clients.get(i).to_vec();
            got.sort_unstable();
            assert_eq!(
                got, expect,
                "disk cache for router {i} drifted from its current disk"
            );
        }
        let mut fresh = self.clone();
        // Ground truth must not trust the caches it just copied.
        fresh.disk_cached.fill(false);
        fresh.rebuild_full();
        assert_eq!(
            self.adjacency, fresh.adjacency,
            "incremental adjacency drifted from full rebuild"
        );
        assert_eq!(
            self.components, fresh.components,
            "components drifted from full rebuild"
        );
        assert_eq!(
            self.giant_mask, fresh.giant_mask,
            "giant mask drifted from components"
        );
        assert_eq!(
            self.cover_count, fresh.cover_count,
            "cover counts drifted from full recompute"
        );
        assert_eq!(
            self.covered, fresh.covered,
            "covered mask drifted from full recompute"
        );
        assert_eq!(
            self.covered_count, fresh.covered_count,
            "covered total drifted from full recompute"
        );
    }
}

impl fmt::Display for WmnTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology[{} routers, {} links, giant {}, covered {}/{}]",
            self.router_count(),
            self.adjacency.edge_count(),
            self.giant_size(),
            self.covered_count,
            self.client_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wmn_model::instance::{InstanceBuilder, InstanceSpec};
    use wmn_model::radio::RadioProfile;
    use wmn_model::rng::rng_from_seed;

    fn paper_topology(seed: u64) -> (ProblemInstance, WmnTopology) {
        let instance = InstanceSpec::paper_normal()
            .unwrap()
            .generate(seed)
            .unwrap();
        let mut rng = rng_from_seed(seed ^ 0xABCD);
        let placement = instance.random_placement(&mut rng);
        let topo =
            WmnTopology::build(&instance, &placement, TopologyConfig::paper_default()).unwrap();
        (instance, topo)
    }

    #[test]
    fn build_validates_placement() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let bad = Placement::from_points(vec![Point::new(1.0, 1.0)]);
        assert!(WmnTopology::build(&instance, &bad, TopologyConfig::default()).is_err());
    }

    #[test]
    fn counts_are_bounded() {
        let (instance, topo) = paper_topology(3);
        assert!(topo.giant_size() >= 1);
        assert!(topo.giant_size() <= instance.router_count());
        assert!(topo.covered_count() <= instance.client_count());
        assert_eq!(topo.router_count(), 64);
        assert_eq!(topo.client_count(), 192);
    }

    #[test]
    fn line_of_routers_is_fully_connected() {
        // 8 routers spaced 9 apart with radius 10: under the mutual-range
        // paper default a link needs d <= min(r_i, r_j) = 10 >= 9.
        let area = Area::square(100.0).unwrap();
        let prof = RadioProfile::fixed(10.0).unwrap();
        let instance = InstanceBuilder::new(area)
            .routers(prof, 8)
            .client(Point::new(50.0, 4.0))
            .build()
            .unwrap();
        let placement: Placement = (0..8)
            .map(|i| Point::new(10.0 + 9.0 * i as f64, 5.0))
            .collect();
        let topo =
            WmnTopology::build(&instance, &placement, TopologyConfig::paper_default()).unwrap();
        assert_eq!(topo.giant_size(), 8);
        // The client at (50, 4) sits within 5 of the router at (46, 5).
        assert_eq!(topo.covered_count(), 1);
    }

    #[test]
    fn giant_only_rule_ignores_isolated_coverage() {
        // Two router clusters: a pair near origin (giant) and one isolated
        // router next to the only client.
        let area = Area::square(100.0).unwrap();
        let prof = RadioProfile::fixed(5.0).unwrap();
        let instance = InstanceBuilder::new(area)
            .routers(prof, 3)
            .client(Point::new(90.0, 90.0))
            .build()
            .unwrap();
        let placement = Placement::from_points(vec![
            Point::new(10.0, 10.0),
            Point::new(15.0, 10.0),
            Point::new(88.0, 90.0),
        ]);
        let giant_only = WmnTopology::build(
            &instance,
            &placement,
            TopologyConfig {
                coverage_rule: CoverageRule::GiantComponentOnly,
                ..TopologyConfig::default()
            },
        )
        .unwrap();
        assert_eq!(giant_only.giant_size(), 2);
        assert_eq!(
            giant_only.covered_count(),
            0,
            "isolated router's client must not count under giant-only"
        );

        let any = WmnTopology::build(
            &instance,
            &placement,
            TopologyConfig {
                coverage_rule: CoverageRule::AnyRouter,
                ..TopologyConfig::default()
            },
        )
        .unwrap();
        assert_eq!(any.covered_count(), 1);
    }

    #[test]
    fn move_router_matches_full_rebuild() {
        let (_instance, mut topo) = paper_topology(7);
        let mut rng = rng_from_seed(99);
        for step in 0..25 {
            let id = RouterId(rng.gen_range(0..topo.router_count()));
            let p = Point::new(rng.gen_range(0.0..=128.0), rng.gen_range(0.0..=128.0));
            topo.move_router(id, p);
            topo.assert_consistent();
            let incr = (topo.giant_size(), topo.covered_count());
            let mut fresh = topo.clone();
            fresh.rebuild_full();
            assert_eq!(
                incr,
                (fresh.giant_size(), fresh.covered_count()),
                "drift after step {step}"
            );
        }
    }

    fn churn(topo: &mut WmnTopology, seed: u64, steps: usize, extent: f64) {
        let mut rng = rng_from_seed(seed);
        for _ in 0..steps {
            let id = RouterId(rng.gen_range(0..topo.router_count()));
            let p = Point::new(rng.gen_range(0.0..=extent), rng.gen_range(0.0..=extent));
            topo.move_router(id, p);
        }
    }

    /// A dense, well-connected topology: deleted edges usually leave both
    /// endpoints with other links, so deletion repair actually runs the
    /// bounded search (the paper instance is sparse enough that deletions
    /// mostly hit the singleton fast path and never search).
    fn dense_topology(seed: u64) -> WmnTopology {
        let area = Area::square(40.0).unwrap();
        let prof = RadioProfile::fixed(12.0).unwrap();
        let instance = InstanceBuilder::new(area)
            .routers(prof, 24)
            .client(Point::new(20.0, 20.0))
            .build()
            .unwrap();
        let mut rng = rng_from_seed(seed);
        let placement = instance.random_placement(&mut rng);
        WmnTopology::build(&instance, &placement, TopologyConfig::paper_default()).unwrap()
    }

    #[test]
    fn degrade_one_rung_walks_the_ladder() {
        let (_instance, mut topo) = paper_topology(5);
        assert_eq!(topo.connectivity_mode(), ConnectivityMode::Dynamic);
        topo.degrade_one_rung();
        assert_eq!(topo.connectivity_mode(), ConnectivityMode::DsuRescan);
        topo.degrade_one_rung();
        assert_eq!(topo.connectivity_mode(), ConnectivityMode::FullRebuild);
        topo.degrade_one_rung();
        assert_eq!(topo.connectivity_mode(), ConnectivityMode::FullRebuild);
        let degrade = topo.engine_stats().degrade;
        assert_eq!(degrade.demotions_to_rescan, 1);
        assert_eq!(degrade.demotions_to_full, 1);
    }

    #[test]
    fn audit_passes_on_a_healthy_engine() {
        let (_instance, mut topo) = paper_topology(13);
        topo.set_degradation_policy(DegradationPolicy {
            audit_every: 4,
            fallback_streak_limit: 0,
        });
        churn(&mut topo, 77, 30, 128.0);
        topo.assert_consistent();
        let degrade = topo.engine_stats().degrade;
        assert!(degrade.audits > 0, "audits must have run");
        assert_eq!(degrade.audit_failures, 0);
        assert_eq!(degrade.demotions_to_rescan, 0);
        assert_eq!(topo.connectivity_mode(), ConnectivityMode::Dynamic);
    }

    #[test]
    fn fallback_streak_demotes_dynamic_to_rescan_without_changing_state() {
        let mut topo = dense_topology(17);
        let mut reference = topo.clone();
        // Cost cap 0 forces the whole-graph fallback on every deletion
        // that needs a search; three in a row must demote.
        topo.set_connectivity_cost_cap(Some(0));
        topo.set_degradation_policy(DegradationPolicy {
            audit_every: 0,
            fallback_streak_limit: 3,
        });
        churn(&mut topo, 31, 40, 40.0);
        churn(&mut reference, 31, 40, 40.0);
        assert_eq!(
            topo.connectivity_mode(),
            ConnectivityMode::DsuRescan,
            "the streak must have demoted the engine"
        );
        let degrade = topo.engine_stats().degrade;
        assert_eq!(degrade.demotions_to_rescan, 1);
        assert_eq!(degrade.demotions_to_full, 0);
        // Degradation is output-invariant: same state as the untouched
        // dynamic reference.
        topo.assert_consistent();
        assert_eq!(topo.giant_size(), reference.giant_size());
        assert_eq!(topo.covered_count(), reference.covered_count());
        assert_eq!(topo.components(), reference.components());
    }

    #[test]
    fn degradation_policy_travels_with_state_copies() {
        let (_instance, mut topo) = paper_topology(19);
        let policy = DegradationPolicy {
            audit_every: 8,
            fallback_streak_limit: 2,
        };
        topo.set_degradation_policy(policy);
        let copy = topo.clone();
        assert_eq!(copy.degradation_policy(), policy);
        // Ladder counters are scratch: zeroed in a fresh clone.
        assert_eq!(copy.engine_stats().degrade, Default::default());
        let (_other, mut target) = paper_topology(23);
        target.clone_from(&topo);
        assert_eq!(target.degradation_policy(), policy);
    }

    #[test]
    fn move_router_returns_old_position_for_undo() {
        let (_instance, mut topo) = paper_topology(11);
        let before_giant = topo.giant_size();
        let before_cov = topo.covered_count();
        let before_pos = topo.position(RouterId(5));
        let old = topo.move_router(RouterId(5), Point::new(1.0, 1.0));
        assert_eq!(old, before_pos);
        topo.move_router(RouterId(5), old);
        assert_eq!(topo.giant_size(), before_giant);
        assert_eq!(topo.covered_count(), before_cov);
        assert_eq!(topo.position(RouterId(5)), before_pos);
    }

    #[test]
    fn move_router_clamps_into_area() {
        let (_instance, mut topo) = paper_topology(13);
        topo.move_router(RouterId(0), Point::new(-50.0, 500.0));
        let p = topo.position(RouterId(0));
        assert!(topo.area().contains(p));
        topo.assert_consistent();
    }

    #[test]
    fn swap_routers_matches_full_rebuild() {
        let (_instance, mut topo) = paper_topology(17);
        let mut rng = rng_from_seed(5);
        for _ in 0..20 {
            let a = RouterId(rng.gen_range(0..topo.router_count()));
            let b = RouterId(rng.gen_range(0..topo.router_count()));
            topo.swap_routers(a, b);
            topo.assert_consistent();
        }
    }

    #[test]
    fn swap_is_involutive_on_state() {
        let (_instance, mut topo) = paper_topology(19);
        let snapshot = (topo.giant_size(), topo.covered_count(), topo.placement());
        topo.swap_routers(RouterId(3), RouterId(40));
        topo.swap_routers(RouterId(3), RouterId(40));
        assert_eq!(
            (topo.giant_size(), topo.covered_count(), topo.placement()),
            snapshot
        );
    }

    #[test]
    fn swap_with_self_is_noop() {
        let (_instance, mut topo) = paper_topology(23);
        let snapshot = (topo.giant_size(), topo.covered_count());
        topo.swap_routers(RouterId(8), RouterId(8));
        assert_eq!((topo.giant_size(), topo.covered_count()), snapshot);
    }

    #[test]
    fn swap_exchanges_positions_not_radii() {
        // Radii stay with the router id; positions are exchanged.
        let (_instance, mut topo) = paper_topology(29);
        let (pa, pb) = (topo.position(RouterId(1)), topo.position(RouterId(2)));
        let (ra, rb) = (topo.radius(RouterId(1)), topo.radius(RouterId(2)));
        topo.swap_routers(RouterId(1), RouterId(2));
        assert_eq!(topo.position(RouterId(1)), pb);
        assert_eq!(topo.position(RouterId(2)), pa);
        assert_eq!(topo.radius(RouterId(1)), ra);
        assert_eq!(topo.radius(RouterId(2)), rb);
    }

    #[test]
    fn clustering_routers_improves_connectivity() {
        // Moving all routers into a tight cluster must yield a single
        // component of size N.
        let (instance, mut topo) = paper_topology(31);
        for i in 0..instance.router_count() {
            let angle = i as f64 * 0.7;
            // Circle of radius 1: every pairwise distance is at most the
            // diameter 2 <= min radius of the paper profile, so even under
            // the mutual-range rule the cluster is a clique.
            let p = Point::new(64.0 + angle.cos(), 64.0 + angle.sin());
            topo.move_router(RouterId(i), p);
        }
        assert_eq!(topo.giant_size(), instance.router_count());
    }

    #[test]
    fn display_summarizes_state() {
        let (_instance, topo) = paper_topology(37);
        let s = topo.to_string();
        assert!(s.contains("routers") && s.contains("giant"));
    }

    #[test]
    fn apply_moves_matches_full_rebuild() {
        let (_instance, mut topo) = paper_topology(41);
        let mut rng = rng_from_seed(7);
        for step in 0..20 {
            let k = rng.gen_range(2..20);
            let moves: Vec<(RouterId, Point)> = (0..k)
                .map(|_| {
                    (
                        RouterId(rng.gen_range(0..topo.router_count())),
                        Point::new(rng.gen_range(-5.0..=133.0), rng.gen_range(-5.0..=133.0)),
                    )
                })
                .collect();
            topo.apply_moves(&moves);
            topo.assert_consistent();
            let mut fresh = topo.clone();
            fresh.rebuild_full();
            assert_eq!(
                (topo.giant_size(), topo.covered_count()),
                (fresh.giant_size(), fresh.covered_count()),
                "drift after batch {step}"
            );
        }
    }

    #[test]
    fn apply_moves_equals_sequential_single_moves() {
        let (_instance, mut batch) = paper_topology(43);
        let mut single = batch.clone();
        let mut rng = rng_from_seed(11);
        for _ in 0..10 {
            let k = rng.gen_range(2..12);
            let moves: Vec<(RouterId, Point)> = (0..k)
                .map(|_| {
                    (
                        RouterId(rng.gen_range(0..batch.router_count())),
                        Point::new(rng.gen_range(0.0..=128.0), rng.gen_range(0.0..=128.0)),
                    )
                })
                .collect();
            batch.apply_moves(&moves);
            for &(id, to) in &moves {
                single.move_router(id, to);
            }
            assert_eq!(batch.placement(), single.placement());
            assert_eq!(batch.giant_size(), single.giant_size());
            assert_eq!(batch.covered_count(), single.covered_count());
            assert_eq!(batch.covered_mask(), single.covered_mask());
        }
    }

    #[test]
    fn apply_moves_empty_is_noop_and_inverse_batch_undoes() {
        let (_instance, mut topo) = paper_topology(47);
        let before = (topo.giant_size(), topo.covered_count(), topo.placement());
        topo.apply_moves(&[]);
        assert_eq!(
            (topo.giant_size(), topo.covered_count(), topo.placement()),
            before
        );
        // Duplicate entries: later ones win; the inverse batch (unique
        // routers back to their pre-batch positions) restores the state.
        let undo: Vec<(RouterId, Point)> = [3usize, 9, 9, 21]
            .iter()
            .map(|&i| (RouterId(i), topo.position(RouterId(i))))
            .collect();
        let moves = vec![
            (RouterId(3), Point::new(1.0, 1.0)),
            (RouterId(9), Point::new(2.0, 2.0)),
            (RouterId(9), Point::new(100.0, 100.0)),
            (RouterId(21), Point::new(64.0, 64.0)),
        ];
        topo.apply_moves(&moves);
        topo.assert_consistent();
        assert_eq!(topo.position(RouterId(9)), Point::new(100.0, 100.0));
        topo.apply_moves(&undo);
        topo.assert_consistent();
        assert_eq!(
            (topo.giant_size(), topo.covered_count(), topo.placement()),
            before
        );
    }

    #[test]
    fn diff_then_apply_morphs_to_target() {
        let (instance, mut topo) = paper_topology(53);
        let mut rng = rng_from_seed(13);
        let mut moves = Vec::new();
        for _ in 0..5 {
            let target = instance.random_placement(&mut rng);
            topo.diff_placement_into(&target, &mut moves);
            topo.apply_moves(&moves);
            topo.assert_consistent();
            assert_eq!(topo.placement(), target);
            // A second diff against the reached target is empty.
            topo.diff_placement_into(&target, &mut moves);
            assert!(moves.is_empty());
        }
    }

    #[test]
    fn clone_from_copies_state_and_reuses_buffers() {
        let (instance, mut a) = paper_topology(59);
        let mut rng = rng_from_seed(17);
        // `b` starts from a different placement, then adopts `a`'s state.
        let other = instance.random_placement(&mut rng);
        let mut b = WmnTopology::build(&instance, &other, TopologyConfig::paper_default()).unwrap();
        a.move_router(RouterId(0), Point::new(64.0, 64.0));
        b.clone_from(&a);
        b.assert_consistent();
        assert_eq!(b.placement(), a.placement());
        assert_eq!(b.giant_size(), a.giant_size());
        assert_eq!(b.covered_count(), a.covered_count());
        // The copy is live: further moves keep it consistent independently.
        b.move_router(RouterId(5), Point::new(10.0, 10.0));
        b.assert_consistent();
        assert_ne!(b.placement(), a.placement());
        a.assert_consistent();
    }

    #[test]
    fn apply_moves_from_donor_matches_plain_apply() {
        // The crossover-child shape: move a block of routers onto another
        // live topology's exact positions, once with that topology as the
        // disk-cache donor and once without. State must be identical.
        let (instance, base) = paper_topology(67);
        let mut rng = rng_from_seed(23);
        let other_placement = instance.random_placement(&mut rng);
        let donor =
            WmnTopology::build(&instance, &other_placement, TopologyConfig::paper_default())
                .unwrap();
        let moves: Vec<(RouterId, Point)> = (0..24)
            .map(|i| (RouterId(i), donor.position(RouterId(i))))
            .collect();
        let mut with_donor = base.clone();
        with_donor.apply_moves_from(&moves, Some(&donor));
        with_donor.assert_consistent();
        let mut without = base.clone();
        without.apply_moves(&moves);
        assert_eq!(with_donor.placement(), without.placement());
        assert_eq!(with_donor.giant_size(), without.giant_size());
        assert_eq!(with_donor.covered_count(), without.covered_count());
        assert_eq!(with_donor.covered_mask(), without.covered_mask());
        // A donor from a different instance is ignored, not trusted.
        let foreign_instance = InstanceSpec::paper_normal().unwrap().generate(999).unwrap();
        let foreign_placement = foreign_instance.random_placement(&mut rng);
        let foreign = WmnTopology::build(
            &foreign_instance,
            &foreign_placement,
            TopologyConfig::paper_default(),
        )
        .unwrap();
        let mut guarded = base.clone();
        guarded.apply_moves_from(&moves, Some(&foreign));
        guarded.assert_consistent();
        assert_eq!(guarded.covered_count(), without.covered_count());
    }

    #[test]
    fn apply_moves_in_rebuild_mode_matches_incremental() {
        let (_instance, mut inc) = paper_topology(61);
        let mut reb = inc.clone();
        reb.set_rebuild_mode(true);
        let mut rng = rng_from_seed(19);
        for _ in 0..10 {
            let k = rng.gen_range(2..10);
            let moves: Vec<(RouterId, Point)> = (0..k)
                .map(|_| {
                    (
                        RouterId(rng.gen_range(0..inc.router_count())),
                        Point::new(rng.gen_range(0.0..=128.0), rng.gen_range(0.0..=128.0)),
                    )
                })
                .collect();
            inc.apply_moves(&moves);
            reb.apply_moves(&moves);
            assert_eq!(inc.placement(), reb.placement());
            assert_eq!(inc.giant_size(), reb.giant_size());
            assert_eq!(inc.covered_count(), reb.covered_count());
            assert_eq!(inc.covered_mask(), reb.covered_mask());
        }
    }

    #[test]
    fn engine_stats_count_the_work_actually_done() {
        let (_instance, mut topo) = paper_topology(23);
        let built = topo.engine_stats();
        // Construction recomputed coverage once, querying exactly the
        // counted (giant-member) routers' disks from the client grid.
        assert_eq!(built.topology.coverage_full_recomputes, 1);
        assert_eq!(built.topology.disk_grid_queries, topo.giant_size() as u64);
        assert_eq!(built.topology.single_moves, 0);

        let mut rng = rng_from_seed(5);
        for _ in 0..10 {
            let id = RouterId(rng.gen_range(0..topo.router_count()));
            let p = Point::new(rng.gen_range(0.0..=128.0), rng.gen_range(0.0..=128.0));
            topo.move_router(id, p);
        }
        topo.swap_routers(RouterId(0), RouterId(1));
        let after = topo.engine_stats();
        assert_eq!(after.topology.single_moves, 10);
        assert_eq!(after.topology.swaps, 1);
        assert!(
            after.connectivity.repairs > 0,
            "dynamic mode must route repairs through the engine"
        );

        // `clone` starts a zeroed window; `clone_from` keeps counting and
        // records the buffer reuse.
        let mut copy = topo.clone();
        assert_eq!(copy.engine_stats(), EngineStats::default());
        copy.clone_from(&topo);
        assert_eq!(copy.engine_stats().topology.clone_from_reuses, 1);

        // A reset opens a fresh delta window on a live topology.
        topo.reset_engine_stats();
        assert_eq!(topo.engine_stats(), EngineStats::default());
        topo.move_router(RouterId(2), Point::new(64.0, 64.0));
        assert_eq!(topo.engine_stats().topology.single_moves, 1);
    }

    #[test]
    fn full_rebuild_mode_shows_up_in_the_counters() {
        let (_instance, mut topo) = paper_topology(29);
        topo.reset_engine_stats();
        topo.set_connectivity_mode(ConnectivityMode::FullRebuild);
        topo.move_router(RouterId(3), Point::new(10.0, 10.0));
        let stats = topo.engine_stats();
        assert_eq!(stats.topology.full_rebuilds, 1);
        assert_eq!(
            stats.connectivity.repairs, 0,
            "full rebuild must bypass the dynamic engine"
        );
    }

    #[test]
    fn apply_phases_partition_the_batch_repair_work() {
        let (_instance, mut topo) = paper_topology(41);
        topo.reset_engine_stats();
        let mut rng = rng_from_seed(11);
        for _ in 0..12 {
            let k = rng.gen_range(2..8);
            let moves: Vec<(RouterId, Point)> = (0..k)
                .map(|_| {
                    (
                        RouterId(rng.gen_range(0..topo.router_count())),
                        Point::new(rng.gen_range(0.0..=128.0), rng.gen_range(0.0..=128.0)),
                    )
                })
                .collect();
            topo.apply_moves(&moves);
        }
        let totals = topo.engine_stats();
        let phases = topo.apply_phases();
        // Every move went through the batch path, so the buckets account
        // for all engine work; generally they only lower-bound it.
        assert_eq!(phases.attributed(), totals);
        assert_eq!(
            phases.edge_repair.topology.batch_repairs, 12,
            "batch bookkeeping lands in the edge-repair section"
        );
        assert!(phases.component_repair.connectivity.repairs > 0);
        assert!(
            phases.coverage.topology.disk_grid_queries > 0
                || phases.coverage.topology.disk_cache_hits > 0
        );
        assert_eq!(phases.full_rebuild, EngineStats::default());
        // Single moves bypass the batch pipeline: totals grow, buckets
        // don't — the residual is the caller's to attribute.
        topo.move_router(RouterId(0), Point::new(5.0, 5.0));
        assert_eq!(topo.apply_phases(), phases);
        assert_ne!(topo.engine_stats(), totals);
        // `reset_engine_stats` opens a fresh window for the buckets too.
        topo.reset_engine_stats();
        assert_eq!(topo.apply_phases(), ApplyPhases::default());
        // `FullRebuild` mode routes batch work into its escape bucket.
        topo.set_connectivity_mode(ConnectivityMode::FullRebuild);
        topo.apply_moves(&[
            (RouterId(1), Point::new(20.0, 20.0)),
            (RouterId(2), Point::new(30.0, 30.0)),
        ]);
        let phases = topo.apply_phases();
        assert_eq!(phases.full_rebuild.topology.full_rebuilds, 1);
        assert_eq!(phases.attributed(), topo.engine_stats());
    }
}
