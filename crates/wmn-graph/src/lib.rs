//! Graph and geometry substrate for WMN router placement.
//!
//! Everything the placement algorithms need to turn a candidate
//! [`Placement`](wmn_model::Placement) into a measurable network:
//!
//! * [`arena`] — [`NeighborSlab`], the struct-of-arrays slab arena behind
//!   adjacency lists and disk-client caches: per-node spans over one flat
//!   `u32` buffer with power-of-two size-class free lists, cloneable with
//!   a handful of bulk copies.
//! * [`dsu`] — union–find with rank + path compression, resettable in
//!   place for the allocation-free per-move connectivity rebuild.
//! * [`spatial`] — a uniform-grid index for radius/rectangle queries
//!   (lazy, allocation-free iteration) plus the mutable
//!   [`DynamicGrid`] the topology keeps in sync across router moves.
//! * [`adjacency`] — geometric link models and mesh adjacency construction,
//!   with in-place node detach/attach and whole-graph rebuild.
//! * [`components`] — connected components and the giant component (the
//!   paper's connectivity objective), rebuildable through reusable scratch.
//! * [`connectivity`] — [`DynamicConnectivity`], component-local repair of
//!   the component structure under edge insertions (pure DSU unions) and
//!   deletions (bounded bidirectional BFS with a whole-graph-rescan
//!   fallback) — the sub-linear engine behind per-move connectivity.
//! * [`density`] — client-density cell grids with summed-area tables
//!   (HotSpot's zone ranking and the swap movement's dense/sparse areas).
//! * [`topology`] — [`WmnTopology`], the materialized network with the
//!   **delta-evaluation engine**: incremental, allocation-free repair of
//!   edges, connectivity, and coverage after every router move (see the
//!   [`topology`] module docs for the invariants and fallback rules).
//!
//! # Quick start
//!
//! ```
//! use wmn_graph::topology::{TopologyConfig, WmnTopology};
//! use wmn_model::prelude::*;
//!
//! let instance = InstanceSpec::paper_normal()?.generate(7)?;
//! let mut rng = rng_from_seed(1);
//! let placement = instance.random_placement(&mut rng);
//! let topo = WmnTopology::build(&instance, &placement, TopologyConfig::paper_default())?;
//! println!("giant = {}, covered = {}", topo.giant_size(), topo.covered_count());
//! # Ok::<(), wmn_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adjacency;
pub mod arena;
pub mod components;
pub mod connectivity;
pub mod density;
pub mod dsu;
pub mod spatial;
pub mod topology;

pub use adjacency::{LinkModel, MeshAdjacency};
pub use arena::NeighborSlab;
pub use components::Components;
pub use connectivity::{ConnectivityStats, DynamicConnectivity, RepairOutcome};
pub use density::{CellWindow, DensityMap};
pub use dsu::UnionFind;
pub use spatial::{DynamicGrid, GridIndex};
pub use topology::{
    ConnectivityMode, CoverageRule, DegradationPolicy, TopologyConfig, WmnTopology,
};
pub use wmn_obs::{ApplyPhases, EngineStats, TopologyStats};
