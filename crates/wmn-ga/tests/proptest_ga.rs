//! Property-based tests for the GA crate: operator closure (children of
//! valid parents are valid), engine invariants, and selection sanity.

use proptest::prelude::*;
use wmn_ga::crossover::{all_crossovers, CrossoverOp};
use wmn_ga::engine::{GaConfig, GaEngine};
use wmn_ga::init::PopulationInit;
use wmn_ga::mutation::MutationOp;
use wmn_metrics::Evaluator;
use wmn_model::distribution::ClientDistribution;
use wmn_model::geometry::Area;
use wmn_model::instance::{InstanceSpec, ProblemInstance};
use wmn_model::radio::RadioProfile;
use wmn_model::rng::rng_from_seed;
use wmn_placement::registry::AdHocMethod;

fn arbitrary_instance() -> impl Strategy<Value = ProblemInstance> {
    (30.0..160.0f64, 2usize..24, 1usize..48, any::<u64>()).prop_map(
        |(side, routers, clients, seed)| {
            let area = Area::square(side).unwrap();
            InstanceSpec::new(
                area,
                routers,
                clients,
                ClientDistribution::Uniform,
                RadioProfile::paper_default(),
            )
            .unwrap()
            .generate(seed)
            .unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crossover_children_are_valid(
        instance in arbitrary_instance(),
        seed in any::<u64>(),
    ) {
        let mut rng = rng_from_seed(seed);
        let a = instance.random_placement(&mut rng);
        let b = instance.random_placement(&mut rng);
        for op in all_crossovers() {
            let (c1, c2) = op.cross(&a, &b, &mut rng);
            prop_assert!(instance.validate_placement(&c1).is_ok(), "{op} child 1");
            prop_assert!(instance.validate_placement(&c2).is_ok(), "{op} child 2");
        }
    }

    #[test]
    fn mutation_stack_preserves_validity(
        instance in arbitrary_instance(),
        seed in any::<u64>(),
        rounds in 1usize..20,
    ) {
        let mut rng = rng_from_seed(seed);
        let mut placement = instance.random_placement(&mut rng);
        for _ in 0..rounds {
            for op in MutationOp::paper_default_stack() {
                op.mutate(&mut placement, &instance, &mut rng);
            }
        }
        prop_assert!(instance.validate_placement(&placement).is_ok());
    }

    #[test]
    fn single_point_crossover_is_gene_conservative(
        instance in arbitrary_instance(),
        seed in any::<u64>(),
    ) {
        // For every router id, the multiset {c1[i], c2[i]} equals
        // {a[i], b[i]} — crossover only redistributes genes.
        let mut rng = rng_from_seed(seed);
        let a = instance.random_placement(&mut rng);
        let b = instance.random_placement(&mut rng);
        let (c1, c2) = CrossoverOp::SinglePoint.cross(&a, &b, &mut rng);
        for i in 0..a.len() {
            let (pa, pb) = (a.as_slice()[i], b.as_slice()[i]);
            let (ka, kb) = (c1.as_slice()[i], c2.as_slice()[i]);
            prop_assert!(
                (ka == pa && kb == pb) || (ka == pb && kb == pa),
                "gene {} not conserved", i
            );
        }
    }

    #[test]
    fn engine_runs_on_arbitrary_instances(
        instance in arbitrary_instance(),
        seed in any::<u64>(),
    ) {
        let evaluator = Evaluator::paper_default(&instance);
        let config = GaConfig::builder()
            .population_size(6)
            .generations(4)
            .elitism(1)
            .build()
            .unwrap();
        let engine = GaEngine::new(&evaluator, config);
        let outcome = engine
            .run(&PopulationInit::AdHoc(AdHocMethod::Random), &mut rng_from_seed(seed))
            .unwrap();
        prop_assert_eq!(outcome.trace.len(), 5);
        prop_assert!(instance.validate_placement(&outcome.best_placement).is_ok());
        // Elitist best-so-far is monotone.
        let mut prev = f64::NEG_INFINITY;
        for r in outcome.trace.records() {
            prop_assert!(r.best_fitness() >= prev - 1e-9);
            prev = r.best_fitness();
        }
        // The reported best matches a fresh evaluation.
        let re = evaluator.evaluate(&outcome.best_placement).unwrap();
        prop_assert!((re.fitness - outcome.best_evaluation.fitness).abs() < 1e-9);
    }

    #[test]
    fn populations_from_any_method_are_valid(
        instance in arbitrary_instance(),
        seed in any::<u64>(),
        size in 1usize..12,
    ) {
        for method in AdHocMethod::all() {
            let pop = PopulationInit::AdHoc(method)
                .build(&instance, size, &mut rng_from_seed(seed));
            prop_assert_eq!(pop.len(), size);
            for ind in pop.individuals() {
                prop_assert!(instance.validate_placement(ind.placement()).is_ok());
            }
        }
    }
}
