//! Property-based tests pinning the topology-backed GA evaluation path to
//! scratch chromosome evaluation: for children produced by **every**
//! crossover operator and **every** mutation operator, "adopt the parent's
//! live topology + apply the placement diff" must evaluate exactly like a
//! fresh `Evaluator::evaluate` of the child placement.

use proptest::prelude::*;
use wmn_ga::crossover::{all_crossovers, CrossoverOp};
use wmn_ga::mutation::MutationOp;
use wmn_graph::topology::{CoverageRule, TopologyConfig};
use wmn_metrics::evaluator::{EvalWorkspace, Evaluator};
use wmn_metrics::fitness::FitnessFunction;
use wmn_model::distribution::ClientDistribution;
use wmn_model::geometry::Area;
use wmn_model::instance::{InstanceSpec, ProblemInstance};
use wmn_model::placement::Placement;
use wmn_model::rng::rng_from_seed;

fn instance_strategy() -> impl Strategy<Value = ProblemInstance> {
    (70.0..140.0f64, 4usize..32, 8usize..64, any::<u64>()).prop_map(
        |(side, routers, clients, seed)| {
            let area = Area::square(side).unwrap();
            InstanceSpec::new(
                area,
                routers,
                clients,
                ClientDistribution::Uniform,
                wmn_model::radio::RadioProfile::paper_default(),
            )
            .unwrap()
            .generate(seed)
            .unwrap()
        },
    )
}

fn all_mutations() -> Vec<MutationOp> {
    vec![
        MutationOp::UniformReset { rate: 0.2 },
        MutationOp::GaussianJitter {
            rate: 0.5,
            sigma_fraction: 0.05,
        },
        MutationOp::SwapPair { rate: 1.0 },
        MutationOp::AnchorAttach {
            rate: 1.0,
            locality: 40.0,
        },
    ]
}

fn both_rule_evaluators(instance: &ProblemInstance) -> [Evaluator<'_>; 2] {
    [
        Evaluator::paper_default(instance),
        Evaluator::new(
            instance,
            TopologyConfig {
                coverage_rule: CoverageRule::AnyRouter,
                ..TopologyConfig::paper_default()
            },
            FitnessFunction::paper_default(),
        ),
    ]
}

/// Evaluates `child` through the delta path rooted at `parent` and asserts
/// exact equality with scratch evaluation.
fn assert_delta_eval_matches(
    evaluator: &Evaluator<'_>,
    parent: &Placement,
    child: &Placement,
    context: &str,
) {
    let parent_topo = evaluator.topology(parent).unwrap();
    let mut slot = EvalWorkspace::new();
    slot.adopt_topology(&parent_topo);
    let mut moves = Vec::new();
    let delta = evaluator
        .evaluate_moves_to(slot.topology_mut().unwrap(), child, &mut moves)
        .unwrap();
    let scratch = evaluator.evaluate(child).unwrap();
    assert_eq!(delta, scratch, "{context}");
    slot.topology_mut().unwrap().assert_consistent();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn crossover_children_evaluate_identically(
        instance in instance_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = rng_from_seed(seed);
        let pa = instance.random_placement(&mut rng);
        let pb = instance.random_placement(&mut rng);
        for evaluator in &both_rule_evaluators(&instance) {
            for op in all_crossovers() {
                let (c1, c2) = op.cross(&pa, &pb, &mut rng);
                assert_delta_eval_matches(evaluator, &pa, &c1, &format!("{op} c1 vs pa"));
                assert_delta_eval_matches(evaluator, &pb, &c1, &format!("{op} c1 vs pb"));
                assert_delta_eval_matches(evaluator, &pb, &c2, &format!("{op} c2 vs pb"));
            }
        }
    }

    #[test]
    fn mutation_children_evaluate_identically(
        instance in instance_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = rng_from_seed(seed);
        let parent = instance.random_placement(&mut rng);
        for evaluator in &both_rule_evaluators(&instance) {
            for op in all_mutations() {
                let mut child = parent.clone();
                op.mutate(&mut child, &instance, &mut rng);
                assert_delta_eval_matches(evaluator, &parent, &child, &format!("{op}"));
            }
            // The whole paper stack, applied repeatedly (deep drift).
            let mut child = parent.clone();
            for _ in 0..4 {
                for op in MutationOp::paper_default_stack() {
                    op.mutate(&mut child, &instance, &mut rng);
                }
            }
            assert_delta_eval_matches(evaluator, &parent, &child, "paper stack x4");
        }
    }

    #[test]
    fn crossed_then_mutated_children_evaluate_identically(
        instance in instance_strategy(),
        seed in any::<u64>(),
    ) {
        // The exact child shape the engine produces: crossover followed by
        // the full mutation stack, evaluated against either parent.
        let mut rng = rng_from_seed(seed);
        let pa = instance.random_placement(&mut rng);
        let pb = instance.random_placement(&mut rng);
        let evaluator = Evaluator::paper_default(&instance);
        let (mut c1, _) = CrossoverOp::paper_default().cross(&pa, &pb, &mut rng);
        for op in MutationOp::paper_default_stack() {
            op.mutate(&mut c1, &instance, &mut rng);
        }
        assert_delta_eval_matches(&evaluator, &pa, &c1, "engine child vs pa");
        assert_delta_eval_matches(&evaluator, &pb, &c1, "engine child vs pb");
    }
}
