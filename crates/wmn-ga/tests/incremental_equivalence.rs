//! Full-run equivalence suite for the topology-backed GA: complete GA runs
//! under [`GaEvalMode::Incremental`] (dynamic connectivity) must be
//! **bit-identical** to the DSU-rescan-pinned incremental pipeline
//! ([`GaEvalMode::IncrementalDsuRescan`], the dynamic connectivity
//! engine's oracle) and to the full-rebuild reference pipeline
//! ([`GaEvalMode::Rebuild`]) — traces, best placements, and final
//! populations — at every thread count, for ad-hoc and random
//! initializations.

use wmn_ga::engine::{GaConfig, GaEngine, GaEvalMode, GaOutcome};
use wmn_ga::init::PopulationInit;
use wmn_metrics::evaluator::Evaluator;
use wmn_model::instance::ProblemInstance;
use wmn_model::rng::rng_from_seed;
use wmn_placement::registry::AdHocMethod;

fn instance(seed: u64) -> ProblemInstance {
    wmn_model::instance::InstanceSpec::paper_normal()
        .unwrap()
        .generate(seed)
        .unwrap()
}

fn run(
    instance: &ProblemInstance,
    init: &PopulationInit,
    mode: GaEvalMode,
    threads: usize,
    seed: u64,
) -> GaOutcome {
    let evaluator = Evaluator::paper_default(instance);
    let config = GaConfig::builder()
        .population_size(14)
        .generations(12)
        .threads(threads)
        .eval_mode(mode)
        .build()
        .unwrap();
    let engine = GaEngine::new(&evaluator, config);
    engine.run(init, &mut rng_from_seed(seed)).unwrap()
}

fn assert_outcomes_identical(a: &GaOutcome, b: &GaOutcome, context: &str) {
    assert_eq!(a.trace, b.trace, "{context}: trace diverged");
    assert_eq!(
        a.best_placement, b.best_placement,
        "{context}: best placement diverged"
    );
    assert_eq!(
        a.best_evaluation, b.best_evaluation,
        "{context}: best evaluation diverged"
    );
    assert_eq!(
        a.final_population, b.final_population,
        "{context}: final population diverged"
    );
}

#[test]
fn incremental_equals_rebuild_across_thread_counts() {
    let inst = instance(2009);
    for init in [
        PopulationInit::AdHoc(AdHocMethod::HotSpot),
        PopulationInit::UniformRandom,
    ] {
        let baseline = run(&inst, &init, GaEvalMode::Rebuild, 1, 42);
        for threads in [1usize, 2, 8] {
            let incremental = run(&inst, &init, GaEvalMode::Incremental, threads, 42);
            assert_outcomes_identical(
                &baseline,
                &incremental,
                &format!("{} incremental @{threads} threads", init.name()),
            );
            let rescan = run(&inst, &init, GaEvalMode::IncrementalDsuRescan, threads, 42);
            assert_outcomes_identical(
                &baseline,
                &rescan,
                &format!("{} incremental-dsu-rescan @{threads} threads", init.name()),
            );
            let rebuild = run(&inst, &init, GaEvalMode::Rebuild, threads, 42);
            assert_outcomes_identical(
                &baseline,
                &rebuild,
                &format!("{} rebuild @{threads} threads", init.name()),
            );
        }
    }
}

#[test]
fn equivalence_holds_across_seeds_and_methods() {
    // A broader (but shallower) sweep: several (method, seed) cells, serial
    // incremental vs serial rebuild.
    for (i, method) in [AdHocMethod::Corners, AdHocMethod::Diag, AdHocMethod::Near]
        .into_iter()
        .enumerate()
    {
        let inst = instance(100 + i as u64);
        let init = PopulationInit::AdHoc(method);
        let a = run(&inst, &init, GaEvalMode::Incremental, 1, 7 + i as u64);
        let b = run(&inst, &init, GaEvalMode::Rebuild, 1, 7 + i as u64);
        assert_outcomes_identical(&a, &b, method.name());
        let c = run(
            &inst,
            &init,
            GaEvalMode::IncrementalDsuRescan,
            1,
            7 + i as u64,
        );
        assert_outcomes_identical(&a, &c, method.name());
    }
}

#[test]
fn default_mode_is_incremental_and_matches_explicit() {
    let inst = instance(5);
    let init = PopulationInit::AdHoc(AdHocMethod::Cross);
    assert_eq!(GaConfig::paper_default().eval_mode, GaEvalMode::Incremental);
    let default_cfg = run(&inst, &init, GaConfig::paper_default().eval_mode, 2, 11);
    let explicit = run(&inst, &init, GaEvalMode::Incremental, 2, 11);
    assert_outcomes_identical(&default_cfg, &explicit, "default mode");
}
