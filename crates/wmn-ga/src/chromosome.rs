//! Individuals: placements with cached evaluations.

use serde::{Deserialize, Serialize};
use wmn_metrics::evaluator::Evaluation;
use wmn_model::placement::Placement;

/// One member of a GA population: a candidate placement (the chromosome is
/// the router position vector) plus its cached evaluation.
///
/// The cache is invalidated by any genetic operator that touches the
/// placement; the engine re-evaluates lazily once per generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Individual {
    placement: Placement,
    evaluation: Option<Evaluation>,
}

impl Individual {
    /// Wraps a placement as an unevaluated individual.
    pub fn new(placement: Placement) -> Self {
        Individual {
            placement,
            evaluation: None,
        }
    }

    /// The chromosome.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Mutable access to the chromosome; clears the evaluation cache.
    pub fn placement_mut(&mut self) -> &mut Placement {
        self.evaluation = None;
        &mut self.placement
    }

    /// Consumes the individual, returning the chromosome.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// The cached evaluation, if still valid.
    pub fn evaluation(&self) -> Option<Evaluation> {
        self.evaluation
    }

    /// Caches an evaluation.
    pub fn set_evaluation(&mut self, evaluation: Evaluation) {
        self.evaluation = Some(evaluation);
    }

    /// Cached fitness, or `f64::NEG_INFINITY` when unevaluated (so sorting
    /// unevaluated individuals last is safe).
    pub fn fitness(&self) -> f64 {
        self.evaluation.map_or(f64::NEG_INFINITY, |e| e.fitness)
    }

    /// Returns `true` if the evaluation cache is filled.
    pub fn is_evaluated(&self) -> bool {
        self.evaluation.is_some()
    }
}

impl From<Placement> for Individual {
    fn from(placement: Placement) -> Self {
        Individual::new(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_metrics::measurement::NetworkMeasurement;
    use wmn_model::geometry::Point;

    fn eval(fit: f64) -> Evaluation {
        Evaluation {
            measurement: NetworkMeasurement::default(),
            fitness: fit,
        }
    }

    #[test]
    fn cache_lifecycle() {
        let mut ind = Individual::new(Placement::from_points(vec![Point::new(1.0, 1.0)]));
        assert!(!ind.is_evaluated());
        assert_eq!(ind.fitness(), f64::NEG_INFINITY);
        ind.set_evaluation(eval(0.5));
        assert!(ind.is_evaluated());
        assert_eq!(ind.fitness(), 0.5);
        // Mutation invalidates.
        ind.placement_mut().push(Point::new(2.0, 2.0));
        assert!(!ind.is_evaluated());
    }

    #[test]
    fn read_access_keeps_cache() {
        let mut ind = Individual::new(Placement::new());
        ind.set_evaluation(eval(0.25));
        let _ = ind.placement();
        assert!(ind.is_evaluated());
    }

    #[test]
    fn conversions() {
        let p = Placement::from_points(vec![Point::new(3.0, 4.0)]);
        let ind: Individual = p.clone().into();
        assert_eq!(ind.clone().into_placement(), p);
    }
}
