//! Mutation operators on placement chromosomes.
//!
//! All operators clamp results into the deployment area, so mutated
//! children of valid individuals stay valid. The paper does not specify its
//! GA operators (it cites an external GA implementation); the default stack
//! combines generic operators (jitter, reset) with a problem-aware
//! **anchor-attach** move that relocates a router into the mutual link
//! range of another — the GA-side counterpart of the swap movement's
//! "re-establish mesh nodes network connections" step, and the operator
//! that lets populations assemble connected meshes at all under the
//! mutual-range link model.
//!
//! Every operator is expressed as a **plan of [`MoveAction`] deltas**
//! ([`MutationOp::plan`]) — the same move vocabulary `wmn-search` uses —
//! which the topology-backed GA engine applies to chromosomes and folds
//! into the incremental batch repair of the evaluation topology.
//! [`MutationOp::mutate`] is plan-then-apply, so the two paths cannot
//! drift.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;
use wmn_model::distribution::standard_normal;
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;
use wmn_search::movement::MoveAction;

/// A mutation strategy; `rate` fields are probabilities (per gene for the
/// gene-wise operators, per application for the pairwise ones).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MutationOp {
    /// Each router is reset to a uniform random position with probability
    /// `rate`.
    UniformReset {
        /// Per-router reset probability.
        rate: f64,
    },
    /// Each router is jittered by Gaussian noise with probability `rate`;
    /// `sigma_fraction` scales the noise to the area's smaller dimension.
    GaussianJitter {
        /// Per-router jitter probability.
        rate: f64,
        /// Noise standard deviation as a fraction of `min(W, H)`.
        sigma_fraction: f64,
    },
    /// With probability `rate` (per application), two random routers
    /// exchange positions — the GA-side analogue of the paper's swap
    /// movement.
    SwapPair {
        /// Probability that the swap happens at all.
        rate: f64,
    },
    /// With probability `rate` (per application), a random router relocates
    /// to within mutual link range (`min(r_a, r_b)`) of a **nearby** router
    /// (an anchor within `locality` length units, or the nearest router
    /// when none is that close), so the pair can form a link.
    ///
    /// The locality bound is what makes this a *local* perturbation: sub-
    /// meshes can consolidate, but distant clusters (e.g. the four Corners
    /// blobs) merge only through many intermediate generations — the
    /// mechanism behind the initialization-dependent convergence of the
    /// paper's Figures 1–3.
    AnchorAttach {
        /// Probability that the attach happens at all.
        rate: f64,
        /// Maximum anchor distance, in length units.
        locality: f64,
    },
}

impl MutationOp {
    /// The mutation stack used for the paper reproduction: small jitter,
    /// occasional uniform resets, and frequent anchor-attach moves.
    pub fn paper_default_stack() -> Vec<MutationOp> {
        vec![
            MutationOp::GaussianJitter {
                rate: 0.08,
                sigma_fraction: 0.02,
            },
            MutationOp::UniformReset { rate: 0.001 },
            MutationOp::AnchorAttach {
                rate: 0.3,
                locality: 16.0,
            },
        ]
    }

    /// Plans the mutation as a batch of [`MoveAction`] deltas against
    /// `placement`, **without applying them**, writing the actions into
    /// `out` (cleared first). Returns the number of genes the actions will
    /// change.
    ///
    /// The RNG stream is consumed exactly as [`MutationOp::mutate`]
    /// consumes it (`mutate` *is* plan-then-apply), so planning callers —
    /// the topology-backed GA engine routes every mutation through here and
    /// applies the actions with [`MoveAction::apply_to_placement`] — stay
    /// bit-identical to in-place mutation. Relocation targets are already
    /// clamped into the deployment area.
    ///
    /// Actions are planned against the *incoming* placement: within one
    /// operator no action's target depends on another's effect, so applying
    /// them in any order lands the same placement.
    pub fn plan(
        &self,
        placement: &Placement,
        instance: &ProblemInstance,
        rng: &mut dyn RngCore,
        out: &mut Vec<MoveAction>,
    ) -> usize {
        out.clear();
        let area = instance.area();
        let n = placement.len();
        if n == 0 {
            return 0;
        }
        match *self {
            MutationOp::UniformReset { rate } => {
                for i in 0..n {
                    if rng.gen::<f64>() < rate {
                        out.push(MoveAction::Relocate {
                            router: wmn_model::RouterId(i),
                            to: Point::new(
                                rng.gen_range(0.0..=area.width()),
                                rng.gen_range(0.0..=area.height()),
                            ),
                        });
                    }
                }
                out.len()
            }
            MutationOp::GaussianJitter {
                rate,
                sigma_fraction,
            } => {
                let sigma = sigma_fraction.max(0.0) * area.width().min(area.height());
                for i in 0..n {
                    if rng.gen::<f64>() < rate {
                        let id = wmn_model::RouterId(i);
                        let p = placement[id];
                        out.push(MoveAction::Relocate {
                            router: id,
                            to: area.clamp_point(Point::new(
                                p.x + sigma * standard_normal(rng),
                                p.y + sigma * standard_normal(rng),
                            )),
                        });
                    }
                }
                out.len()
            }
            MutationOp::SwapPair { rate } => {
                if n >= 2 && rng.gen::<f64>() < rate {
                    let (a, b) = pick_distinct_pair(n, rng);
                    out.push(MoveAction::Swap {
                        a: wmn_model::RouterId(a),
                        b: wmn_model::RouterId(b),
                    });
                    2
                } else {
                    0
                }
            }
            MutationOp::AnchorAttach { rate, locality } => {
                if n >= 2 && rng.gen::<f64>() < rate {
                    let mover = rng.gen_range(0..n);
                    let mover_pos = placement[wmn_model::RouterId(mover)];
                    // Anchor pool: routers within `locality` of the mover.
                    let nearby: Vec<usize> = (0..n)
                        .filter(|&j| j != mover)
                        .filter(|&j| {
                            placement[wmn_model::RouterId(j)].distance_squared(mover_pos)
                                <= locality * locality
                        })
                        .collect();
                    // No anchor in reach -> no-op: the attach is a *local*
                    // perturbation; isolated routers cannot teleport across
                    // the area (that is what keeps initialization structure
                    // relevant over the whole run, as in the paper).
                    if nearby.is_empty() {
                        return 0;
                    }
                    let anchor = nearby[rng.gen_range(0..nearby.len())];
                    let reach = instance.routers()[mover]
                        .current_radius()
                        .min(instance.routers()[anchor].current_radius());
                    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                    let dist = reach * rng.gen_range(0.4..0.95);
                    let a = placement[wmn_model::RouterId(anchor)];
                    out.push(MoveAction::Relocate {
                        router: wmn_model::RouterId(mover),
                        to: area.clamp_point(Point::new(
                            a.x + dist * angle.cos(),
                            a.y + dist * angle.sin(),
                        )),
                    });
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Applies the mutation in place. Returns the number of genes changed.
    ///
    /// Implemented as [`plan`](MutationOp::plan) followed by placement-level
    /// application, so the two paths cannot drift; loops that care about
    /// allocations should call `plan` with a reused buffer instead.
    pub fn mutate(
        &self,
        placement: &mut Placement,
        instance: &ProblemInstance,
        rng: &mut dyn RngCore,
    ) -> usize {
        let mut actions = Vec::new();
        let changed = self.plan(placement, instance, rng, &mut actions);
        for action in &actions {
            action.apply_to_placement(placement);
        }
        changed
    }
}

/// Two distinct indices in `0..n` (requires `n >= 2`).
fn pick_distinct_pair(n: usize, rng: &mut dyn RngCore) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

impl fmt::Display for MutationOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationOp::UniformReset { rate } => write!(f, "uniform-reset(rate={rate})"),
            MutationOp::GaussianJitter {
                rate,
                sigma_fraction,
            } => write!(f, "gaussian-jitter(rate={rate}, sigma={sigma_fraction})"),
            MutationOp::SwapPair { rate } => write!(f, "swap-pair(rate={rate})"),
            MutationOp::AnchorAttach { rate, locality } => {
                write!(f, "anchor-attach(rate={rate}, locality={locality})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceBuilder;
    use wmn_model::radio::RadioProfile;
    use wmn_model::rng::rng_from_seed;
    use wmn_model::Area;

    fn instance(n: usize) -> ProblemInstance {
        let area = Area::square(100.0).unwrap();
        InstanceBuilder::new(area)
            .routers(RadioProfile::new(2.0, 8.0).unwrap(), n)
            .client(Point::new(50.0, 50.0))
            .build()
            .unwrap()
    }

    fn placement(n: usize) -> Placement {
        (0..n).map(|i| Point::new(i as f64, 50.0)).collect()
    }

    #[test]
    fn uniform_reset_rate_zero_changes_nothing() {
        let inst = instance(20);
        let mut p = placement(20);
        let before = p.clone();
        let mut rng = rng_from_seed(1);
        let changed = MutationOp::UniformReset { rate: 0.0 }.mutate(&mut p, &inst, &mut rng);
        assert_eq!(changed, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn uniform_reset_rate_one_changes_everything() {
        let inst = instance(20);
        let mut p = placement(20);
        let before = p.clone();
        let mut rng = rng_from_seed(2);
        let changed = MutationOp::UniformReset { rate: 1.0 }.mutate(&mut p, &inst, &mut rng);
        assert_eq!(changed, 20);
        assert_ne!(p, before);
        assert!(p.validate(&inst.area(), 20).is_ok());
    }

    #[test]
    fn jitter_keeps_positions_in_area() {
        let inst = instance(50);
        let mut p = placement(50);
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            MutationOp::GaussianJitter {
                rate: 1.0,
                sigma_fraction: 0.2,
            }
            .mutate(&mut p, &inst, &mut rng);
            assert!(p.validate(&inst.area(), 50).is_ok());
        }
    }

    #[test]
    fn jitter_moves_points_locally() {
        let inst = instance(100);
        let mut p = placement(100);
        let before = p.clone();
        let mut rng = rng_from_seed(4);
        MutationOp::GaussianJitter {
            rate: 1.0,
            sigma_fraction: 0.01, // sigma = 1 unit
        }
        .mutate(&mut p, &inst, &mut rng);
        let max_shift = p
            .as_slice()
            .iter()
            .zip(before.as_slice())
            .map(|(a, b)| a.distance(*b))
            .fold(0.0f64, f64::max);
        assert!(max_shift > 0.0);
        assert!(
            max_shift < 10.0,
            "sigma=1 should rarely shift 10 units, got {max_shift}"
        );
    }

    #[test]
    fn swap_pair_preserves_position_multiset() {
        let inst = instance(10);
        let mut p = placement(10);
        let before = p.clone();
        let mut rng = rng_from_seed(5);
        let changed = MutationOp::SwapPair { rate: 1.0 }.mutate(&mut p, &inst, &mut rng);
        assert_eq!(changed, 2);
        assert_ne!(p, before, "swap must change the vector");
        let key = |q: &Point| ((q.x * 1e6) as i64, (q.y * 1e6) as i64);
        let mut a: Vec<_> = before.as_slice().iter().map(key).collect();
        let mut b: Vec<_> = p.as_slice().iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "swap is a permutation");
    }

    #[test]
    fn swap_pair_on_singleton_is_noop() {
        let inst = instance(1);
        let mut p = placement(1);
        let before = p.clone();
        let mut rng = rng_from_seed(6);
        let changed = MutationOp::SwapPair { rate: 1.0 }.mutate(&mut p, &inst, &mut rng);
        assert_eq!(changed, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn anchor_attach_lands_within_mutual_range() {
        let inst = instance(12);
        let mut rng = rng_from_seed(7);
        for _ in 0..100 {
            let mut p = placement(12);
            let before = p.clone();
            let changed = MutationOp::AnchorAttach {
                rate: 1.0,
                locality: 30.0,
            }
            .mutate(&mut p, &inst, &mut rng);
            assert_eq!(changed, 1);
            // Exactly one router moved; it must sit within min-radius reach
            // of some other router (modulo area clamping at the boundary).
            let moved: Vec<usize> = (0..12)
                .filter(|&i| p.as_slice()[i] != before.as_slice()[i])
                .collect();
            assert_eq!(moved.len(), 1);
            let m = moved[0];
            let max_reach = inst.routers()[m].profile().max_radius();
            let near = (0..12)
                .filter(|&j| j != m)
                .any(|j| p.as_slice()[m].distance(p.as_slice()[j]) <= max_reach);
            assert!(near, "attached router must be near an anchor");
            assert!(p.validate(&inst.area(), 12).is_ok());
        }
    }

    #[test]
    fn anchor_attach_on_singleton_is_noop() {
        let inst = instance(1);
        let mut p = placement(1);
        let mut rng = rng_from_seed(8);
        assert_eq!(
            MutationOp::AnchorAttach {
                rate: 1.0,
                locality: 30.0
            }
            .mutate(&mut p, &inst, &mut rng),
            0
        );
    }

    #[test]
    fn empty_placement_is_noop_for_all_ops() {
        let inst = instance(2);
        let mut rng = rng_from_seed(9);
        for op in MutationOp::paper_default_stack() {
            let mut p = Placement::new();
            assert_eq!(op.mutate(&mut p, &inst, &mut rng), 0);
        }
    }

    #[test]
    fn paper_stack_keeps_validity() {
        let inst = instance(64);
        let mut p = placement(64);
        let mut rng = rng_from_seed(10);
        for _ in 0..100 {
            for op in MutationOp::paper_default_stack() {
                op.mutate(&mut p, &inst, &mut rng);
            }
        }
        assert!(p.validate(&inst.area(), 64).is_ok());
    }

    #[test]
    fn plan_is_pure_and_matches_mutate_per_seed() {
        let inst = instance(32);
        for op in MutationOp::paper_default_stack()
            .into_iter()
            .chain([MutationOp::SwapPair { rate: 1.0 }])
        {
            let base = placement(32);
            // Planning must not touch the placement...
            let mut actions = Vec::new();
            let probe = base.clone();
            let changed = op.plan(&probe, &inst, &mut rng_from_seed(77), &mut actions);
            assert_eq!(probe, base, "{op}: plan mutated the placement");
            // ...and plan-then-apply must equal mutate on the same stream.
            let mut planned = base.clone();
            for a in &actions {
                a.apply_to_placement(&mut planned);
            }
            let mut mutated = base.clone();
            let changed2 = op.mutate(&mut mutated, &inst, &mut rng_from_seed(77));
            assert_eq!(planned, mutated, "{op}");
            assert_eq!(changed, changed2, "{op}");
            assert!(planned.validate(&inst.area(), 32).is_ok(), "{op}");
        }
    }

    #[test]
    fn pick_distinct_pair_is_distinct() {
        let mut rng = rng_from_seed(11);
        for _ in 0..1000 {
            let (a, b) = pick_distinct_pair(5, &mut rng);
            assert_ne!(a, b);
            assert!(a < 5 && b < 5);
        }
    }
}
