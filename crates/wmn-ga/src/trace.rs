//! Per-generation GA traces (the data behind Figures 1–3).

use serde::{Deserialize, Serialize};
use wmn_metrics::stats::Trace;

/// Summary of one generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// 0-based generation number (0 = initial population).
    pub generation: usize,
    /// Best fitness in the population.
    pub best_fitness: f64,
    /// Giant component size of the best individual.
    pub best_giant: usize,
    /// Covered clients of the best individual.
    pub best_coverage: usize,
    /// Mean fitness over the population.
    pub mean_fitness: f64,
    /// Positional diversity of the population (see
    /// [`Population::positional_diversity`](crate::population::Population::positional_diversity)).
    pub diversity: f64,
}

/// The full per-generation history of one GA run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GaTrace {
    records: Vec<GenerationRecord>,
}

impl GaTrace {
    /// An empty trace.
    pub fn new() -> Self {
        GaTrace::default()
    }

    /// Appends a generation record.
    pub fn push(&mut self, record: GenerationRecord) {
        self.records.push(record);
    }

    /// All records in generation order.
    pub fn records(&self) -> &[GenerationRecord] {
        &self.records
    }

    /// Number of recorded generations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no generations are recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `(generation, best giant size)` series — the y-axis of Figures 1–3.
    pub fn giant_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for r in &self.records {
            t.push(r.generation as f64, r.best_giant as f64);
        }
        t
    }

    /// `(generation, best fitness)` series.
    pub fn fitness_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for r in &self.records {
            t.push(r.generation as f64, r.best_fitness);
        }
        t
    }

    /// `(generation, diversity)` series.
    pub fn diversity_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for r in &self.records {
            t.push(r.generation as f64, r.diversity);
        }
        t
    }

    /// The last record, if any.
    pub fn last(&self) -> Option<&GenerationRecord> {
        self.records.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(generation: usize, giant: usize) -> GenerationRecord {
        GenerationRecord {
            generation,
            best_fitness: giant as f64 / 64.0,
            best_giant: giant,
            best_coverage: giant,
            mean_fitness: giant as f64 / 128.0,
            diversity: 1.0,
        }
    }

    #[test]
    fn series_extraction() {
        let mut t = GaTrace::new();
        t.push(record(0, 4));
        t.push(record(1, 9));
        assert_eq!(t.len(), 2);
        assert_eq!(t.giant_series("x").points(), &[(0.0, 4.0), (1.0, 9.0)]);
        assert_eq!(t.fitness_series("x").last_y(), Some(9.0 / 64.0));
        assert_eq!(t.diversity_series("x").last_y(), Some(1.0));
        assert_eq!(t.last().unwrap().generation, 1);
    }

    #[test]
    fn empty_trace() {
        let t = GaTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.last(), None);
        assert!(t.giant_series("x").is_empty());
    }
}
