//! Per-generation GA traces (the data behind Figures 1–3).
//!
//! The per-generation record embeds the engine-agnostic
//! [`ProgressPoint`](wmn_metrics::stats::ProgressPoint) from
//! `wmn-metrics`, the same shape the neighborhood-search drivers' per-phase
//! trace uses — so figure writers and telemetry consume one type regardless
//! of which engine produced the run.

use serde::{Deserialize, Serialize};
use wmn_metrics::stats::{ProgressPoint, Trace};

/// Summary of one generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// Best solution quality in the population (`step` is the 0-based
    /// generation number; 0 = initial population).
    pub progress: ProgressPoint,
    /// Mean fitness over the population.
    pub mean_fitness: f64,
    /// Positional diversity of the population (see
    /// [`Population::positional_diversity`](crate::population::Population::positional_diversity)).
    pub diversity: f64,
}

impl GenerationRecord {
    /// Builds a record for one generation.
    pub fn new(
        generation: usize,
        best_fitness: f64,
        best_giant: usize,
        best_coverage: usize,
        mean_fitness: f64,
        diversity: f64,
    ) -> Self {
        GenerationRecord {
            progress: ProgressPoint::new(generation, best_fitness, best_giant, best_coverage),
            mean_fitness,
            diversity,
        }
    }

    /// 0-based generation number (0 = initial population).
    pub fn generation(&self) -> usize {
        self.progress.step
    }

    /// Best fitness in the population.
    pub fn best_fitness(&self) -> f64 {
        self.progress.fitness
    }

    /// Giant component size of the best individual.
    pub fn best_giant(&self) -> usize {
        self.progress.giant_size
    }

    /// Covered clients of the best individual.
    pub fn best_coverage(&self) -> usize {
        self.progress.covered_clients
    }
}

/// The full per-generation history of one GA run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GaTrace {
    records: Vec<GenerationRecord>,
}

impl GaTrace {
    /// An empty trace.
    pub fn new() -> Self {
        GaTrace::default()
    }

    /// Appends a generation record.
    pub fn push(&mut self, record: GenerationRecord) {
        self.records.push(record);
    }

    /// All records in generation order.
    pub fn records(&self) -> &[GenerationRecord] {
        &self.records
    }

    /// Number of recorded generations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no generations are recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `(generation, best giant size)` series — the y-axis of Figures 1–3.
    pub fn giant_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for r in &self.records {
            let (x, y) = r.progress.giant_xy();
            t.push(x, y);
        }
        t
    }

    /// `(generation, best fitness)` series.
    pub fn fitness_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for r in &self.records {
            let (x, y) = r.progress.fitness_xy();
            t.push(x, y);
        }
        t
    }

    /// `(generation, diversity)` series.
    pub fn diversity_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for r in &self.records {
            t.push(r.generation() as f64, r.diversity);
        }
        t
    }

    /// The last record, if any.
    pub fn last(&self) -> Option<&GenerationRecord> {
        self.records.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(generation: usize, giant: usize) -> GenerationRecord {
        GenerationRecord::new(
            generation,
            giant as f64 / 64.0,
            giant,
            giant,
            giant as f64 / 128.0,
            1.0,
        )
    }

    #[test]
    fn series_extraction() {
        let mut t = GaTrace::new();
        t.push(record(0, 4));
        t.push(record(1, 9));
        assert_eq!(t.len(), 2);
        assert_eq!(t.giant_series("x").points(), &[(0.0, 4.0), (1.0, 9.0)]);
        assert_eq!(t.fitness_series("x").last_y(), Some(9.0 / 64.0));
        assert_eq!(t.diversity_series("x").last_y(), Some(1.0));
        assert_eq!(t.last().unwrap().generation(), 1);
    }

    #[test]
    fn record_accessors_mirror_the_progress_point() {
        let r = record(3, 12);
        assert_eq!(r.generation(), 3);
        assert_eq!(r.best_giant(), 12);
        assert_eq!(r.best_coverage(), 12);
        assert_eq!(r.best_fitness(), 12.0 / 64.0);
        assert_eq!(r.progress.step, 3);
    }

    #[test]
    fn empty_trace() {
        let t = GaTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.last(), None);
        assert!(t.giant_series("x").is_empty());
    }
}
