//! Population initialization, including ad-hoc-seeded populations.
//!
//! The paper's second evaluation scenario uses the ad hoc methods "for
//! generating the initial population of GA", observing that their solution
//! diversity drives the GA's convergence (Figures 1–3). [`PopulationInit`]
//! reproduces that: every individual is an independent run of the chosen
//! method (each with its own RNG stream, so pattern adherence and jitter
//! diversify the population).

use crate::chromosome::Individual;
use crate::population::Population;
use rand::RngCore;
use wmn_model::instance::ProblemInstance;
use wmn_model::rng::rng_from_seed;
use wmn_placement::registry::AdHocMethod;

/// Strategy for building the initial population.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PopulationInit {
    /// Every individual from one ad hoc method (the paper's scenario).
    AdHoc(AdHocMethod),
    /// Individuals cycle through several methods (a diversity-maximizing
    /// extension).
    Mixed(Vec<AdHocMethod>),
    /// Uniform random placements (the "pure random generation" the paper
    /// compares ad hoc initialization against).
    UniformRandom,
}

impl PopulationInit {
    /// Builds a population of `size` individuals.
    ///
    /// Each individual draws from a dedicated RNG stream derived from
    /// `rng`, so the population is deterministic per seed yet internally
    /// diverse.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero, or a `Mixed` list is empty.
    pub fn build(
        &self,
        instance: &ProblemInstance,
        size: usize,
        rng: &mut dyn RngCore,
    ) -> Population {
        assert!(size > 0, "population size must be positive");
        let mut population = Population::new();
        for i in 0..size {
            let mut stream = rng_from_seed(rng.next_u64() ^ (i as u64).wrapping_mul(0x9E37));
            let placement = match self {
                PopulationInit::AdHoc(method) => method.heuristic().place(instance, &mut stream),
                PopulationInit::Mixed(methods) => {
                    assert!(!methods.is_empty(), "mixed init needs at least one method");
                    methods[i % methods.len()]
                        .heuristic()
                        .place(instance, &mut stream)
                }
                PopulationInit::UniformRandom => instance.random_placement(&mut stream),
            };
            population.push(Individual::new(placement));
        }
        population
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            PopulationInit::AdHoc(m) => m.name().to_owned(),
            PopulationInit::Mixed(ms) => {
                let names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
                format!("Mixed({})", names.join("+"))
            }
            PopulationInit::UniformRandom => "UniformRandom".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;

    fn instance() -> ProblemInstance {
        InstanceSpec::paper_normal().unwrap().generate(3).unwrap()
    }

    #[test]
    fn builds_requested_size_with_valid_individuals() {
        let inst = instance();
        for init in [
            PopulationInit::AdHoc(AdHocMethod::HotSpot),
            PopulationInit::Mixed(vec![AdHocMethod::Diag, AdHocMethod::Cross]),
            PopulationInit::UniformRandom,
        ] {
            let pop = init.build(&inst, 16, &mut rng_from_seed(1));
            assert_eq!(pop.len(), 16);
            for ind in pop.individuals() {
                assert!(inst.validate_placement(ind.placement()).is_ok());
            }
        }
    }

    #[test]
    fn individuals_are_diverse() {
        let inst = instance();
        let pop =
            PopulationInit::AdHoc(AdHocMethod::HotSpot).build(&inst, 12, &mut rng_from_seed(2));
        assert!(
            pop.positional_diversity() > 0.0,
            "ad hoc population must not collapse to one point"
        );
        // No two individuals identical.
        for i in 0..pop.len() {
            for j in (i + 1)..pop.len() {
                assert_ne!(
                    pop.individuals()[i].placement(),
                    pop.individuals()[j].placement()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance();
        let init = PopulationInit::AdHoc(AdHocMethod::Corners);
        let a = init.build(&inst, 8, &mut rng_from_seed(5));
        let b = init.build(&inst, 8, &mut rng_from_seed(5));
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_cycles_methods() {
        let inst = instance();
        let init = PopulationInit::Mixed(vec![AdHocMethod::Corners, AdHocMethod::Near]);
        let pop = init.build(&inst, 4, &mut rng_from_seed(7));
        // Even indices: Corners (corner mass); odd: Near (central mass).
        let corner_mass = |p: &wmn_model::Placement| {
            p.as_slice()
                .iter()
                .filter(|q| (q.x < 40.0 || q.x > 88.0) && (q.y < 40.0 || q.y > 88.0))
                .count()
        };
        assert!(corner_mass(pop.individuals()[0].placement()) > 40);
        assert!(corner_mass(pop.individuals()[1].placement()) < 20);
    }

    #[test]
    fn names() {
        assert_eq!(PopulationInit::AdHoc(AdHocMethod::Diag).name(), "Diag");
        assert_eq!(PopulationInit::UniformRandom.name(), "UniformRandom");
        assert_eq!(
            PopulationInit::Mixed(vec![AdHocMethod::Diag, AdHocMethod::Cross]).name(),
            "Mixed(Diag+Cross)"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let inst = instance();
        let _ = PopulationInit::UniformRandom.build(&inst, 0, &mut rng_from_seed(0));
    }
}
