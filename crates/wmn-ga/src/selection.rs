//! Parent selection operators.

use crate::population::Population;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parent-selection strategy (all assume an evaluated population).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SelectionOp {
    /// `k`-tournament: sample `k` individuals, take the fittest.
    Tournament {
        /// Tournament size (`k >= 1`); larger means stronger pressure.
        k: usize,
    },
    /// Fitness-proportional (roulette-wheel) selection. Falls back to
    /// uniform choice when total fitness is non-positive.
    RouletteWheel,
    /// Linear rank selection: probability proportional to `n - rank`.
    Rank,
}

impl SelectionOp {
    /// The configuration used for the paper reproduction (3-tournament).
    pub fn paper_default() -> Self {
        SelectionOp::Tournament { k: 3 }
    }

    /// Selects one parent index from `population`.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty, or `k == 0` for tournaments.
    pub fn select(&self, population: &Population, rng: &mut dyn RngCore) -> usize {
        let n = population.len();
        assert!(n > 0, "cannot select from an empty population");
        match *self {
            SelectionOp::Tournament { k } => {
                assert!(k > 0, "tournament size must be positive");
                let mut best = rng.gen_range(0..n);
                for _ in 1..k {
                    let challenger = rng.gen_range(0..n);
                    if population.individuals()[challenger].fitness()
                        > population.individuals()[best].fitness()
                    {
                        best = challenger;
                    }
                }
                best
            }
            SelectionOp::RouletteWheel => {
                let total: f64 = population
                    .individuals()
                    .iter()
                    .map(|i| i.fitness().max(0.0))
                    .sum();
                if total <= 0.0 || !total.is_finite() {
                    return rng.gen_range(0..n);
                }
                let mut spin = rng.gen::<f64>() * total;
                for (i, ind) in population.individuals().iter().enumerate() {
                    spin -= ind.fitness().max(0.0);
                    if spin <= 0.0 {
                        return i;
                    }
                }
                n - 1
            }
            SelectionOp::Rank => {
                let ranked = population.ranked_indices();
                // Weight of the r-th ranked individual: n - r.
                let total = n * (n + 1) / 2;
                let mut spin = rng.gen_range(0..total);
                for (r, &idx) in ranked.iter().enumerate() {
                    let w = n - r;
                    if spin < w {
                        return idx;
                    }
                    spin -= w;
                }
                ranked[n - 1]
            }
        }
    }
}

impl Default for SelectionOp {
    fn default() -> Self {
        SelectionOp::paper_default()
    }
}

impl fmt::Display for SelectionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionOp::Tournament { k } => write!(f, "tournament(k={k})"),
            SelectionOp::RouletteWheel => write!(f, "roulette-wheel"),
            SelectionOp::Rank => write!(f, "rank"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromosome::Individual;
    use wmn_metrics::evaluator::Evaluation;
    use wmn_metrics::measurement::NetworkMeasurement;
    use wmn_model::geometry::Point;
    use wmn_model::placement::Placement;
    use wmn_model::rng::rng_from_seed;

    fn population(fitnesses: &[f64]) -> Population {
        fitnesses
            .iter()
            .map(|&f| {
                let mut i = Individual::new(Placement::from_points(vec![Point::new(0.0, 0.0)]));
                i.set_evaluation(Evaluation {
                    measurement: NetworkMeasurement::default(),
                    fitness: f,
                });
                i
            })
            .collect()
    }

    fn selection_histogram(op: SelectionOp, pop: &Population, trials: usize) -> Vec<usize> {
        let mut rng = rng_from_seed(42);
        let mut counts = vec![0usize; pop.len()];
        for _ in 0..trials {
            counts[op.select(pop, &mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn tournament_prefers_fitter() {
        let pop = population(&[0.1, 0.9, 0.5]);
        let counts = selection_histogram(SelectionOp::Tournament { k: 3 }, &pop, 3000);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn tournament_k1_is_uniform() {
        let pop = population(&[0.1, 0.9]);
        let counts = selection_histogram(SelectionOp::Tournament { k: 1 }, &pop, 4000);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (0.85..1.18).contains(&ratio),
            "k=1 should be uniform, got {ratio}"
        );
    }

    #[test]
    fn roulette_is_fitness_proportional() {
        let pop = population(&[1.0, 3.0]);
        let counts = selection_histogram(SelectionOp::RouletteWheel, &pop, 8000);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (2.5..3.6).contains(&ratio),
            "3:1 fitness should give ~3x, got {ratio}"
        );
    }

    #[test]
    fn roulette_handles_zero_total() {
        let pop = population(&[0.0, 0.0, 0.0]);
        let counts = selection_histogram(SelectionOp::RouletteWheel, &pop, 3000);
        assert!(counts.iter().all(|&c| c > 500), "uniform fallback expected");
    }

    #[test]
    fn rank_prefers_better_but_gentler() {
        let pop = population(&[0.1, 100.0]);
        let rank_counts = selection_histogram(SelectionOp::Rank, &pop, 6000);
        // Rank: weights 2:1 regardless of the huge fitness gap.
        let ratio = rank_counts[1] as f64 / rank_counts[0] as f64;
        assert!(
            (1.7..2.4).contains(&ratio),
            "rank should be ~2:1, got {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_population_panics() {
        let pop = Population::new();
        let mut rng = rng_from_seed(0);
        let _ = SelectionOp::default().select(&pop, &mut rng);
    }

    #[test]
    fn display_names() {
        assert_eq!(SelectionOp::paper_default().to_string(), "tournament(k=3)");
        assert_eq!(SelectionOp::RouletteWheel.to_string(), "roulette-wheel");
        assert_eq!(SelectionOp::Rank.to_string(), "rank");
    }
}
