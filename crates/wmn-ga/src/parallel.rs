//! Threaded population evaluation.
//!
//! Fitness evaluation dominates GA runtime, and individuals are
//! independent — a textbook fork/join. Implemented with
//! `std::thread::scope` so the evaluator (which borrows the instance) can
//! be shared without `'static` gymnastics or extra dependencies.
//!
//! Two evaluation paths exist, and both are deterministic in the thread
//! count (consuming no RNG, with per-child results a pure function of the
//! child's placement):
//!
//! * [`evaluate_population_with`] — the **rebuild** path: every stale
//!   individual is evaluated through a per-worker [`EvalWorkspace`] whose
//!   topology is fully rebuilt in place per candidate. This is the
//!   reference baseline ([`GaEvalMode::Rebuild`]) and the entry point for
//!   populations without live topologies.
//! * [`evaluate_generation`] — the **incremental** path of the
//!   topology-backed GA ([`GaEvalMode::Incremental`]): every child owns an
//!   `EvalWorkspace` slot; a worker copies the lineage parent's live
//!   topology state into the child's slot (`WmnTopology::clone_from`,
//!   allocation-free once warm) and repairs the placement diff through the
//!   incremental batch engine instead of rebuilding. Workers only *read*
//!   the parent generation's slots, so chunks share them freely.
//!
//! [`GaEvalMode::Rebuild`]: crate::engine::GaEvalMode
//! [`GaEvalMode::Incremental`]: crate::engine::GaEvalMode

use crate::chromosome::Individual;
use crate::population::{Lineage, Population};
use wmn_metrics::evaluator::{EvalWorkspace, Evaluator};
use wmn_model::geometry::Point;
use wmn_model::placement::Placement;
use wmn_model::{ModelError, RouterId};

/// Evaluates every stale individual, using up to `threads` workers and
/// fresh per-call workspaces; prefer [`evaluate_population_with`] in loops
/// (the GA engine does) so workspaces persist across generations.
///
/// `threads <= 1` evaluates serially. The result is identical to serial
/// evaluation regardless of thread count (verified by engine tests).
///
/// # Errors
///
/// Propagates the first placement-validation failure (none occur for
/// populations built by the provided initializers and operators).
pub fn evaluate_population(
    evaluator: &Evaluator<'_>,
    population: &mut Population,
    threads: usize,
) -> Result<(), ModelError> {
    evaluate_population_with(evaluator, population, threads, &mut Vec::new())
}

/// Evaluates every stale individual through caller-owned workspaces — one
/// per worker chunk, grown on demand — so a generational loop pays the
/// topology build once per worker for the whole run instead of once per
/// generation.
///
/// # Errors
///
/// Propagates the first placement-validation failure.
pub fn evaluate_population_with(
    evaluator: &Evaluator<'_>,
    population: &mut Population,
    threads: usize,
    workspaces: &mut Vec<EvalWorkspace>,
) -> Result<(), ModelError> {
    if threads <= 1 {
        if workspaces.is_empty() {
            workspaces.push(EvalWorkspace::new());
        }
        return population.evaluate_all_with(evaluator, &mut workspaces[0]);
    }
    let individuals = population.individuals_mut();
    let chunk = individuals.len().div_ceil(threads).max(1);
    let chunk_count = individuals.len().div_ceil(chunk);
    if workspaces.len() < chunk_count {
        workspaces.resize_with(chunk_count, EvalWorkspace::new);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slice, workspace) in individuals.chunks_mut(chunk).zip(workspaces.iter_mut()) {
            handles.push(scope.spawn(move || -> Result<(), ModelError> {
                // One workspace per worker: in-place topology reuse across
                // the whole chunk, no cross-thread sharing needed.
                for ind in slice {
                    if !ind.is_evaluated() {
                        let e = evaluator.evaluate_with(workspace, ind.placement())?;
                        ind.set_evaluation(e);
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("evaluation worker panicked")?;
        }
        Ok(())
    })
}

/// Evaluates an initial population **into per-individual workspace slots**:
/// each individual is evaluated through its own slot, leaving every slot
/// holding a live topology of that individual's placement — the seed state
/// of the topology-backed generational loop.
///
/// `threads <= 1` evaluates serially; results are identical for every
/// thread count.
///
/// # Errors
///
/// Propagates the first placement-validation failure.
///
/// # Panics
///
/// Panics if `slots.len() != population.len()`.
pub fn evaluate_initial(
    evaluator: &Evaluator<'_>,
    population: &mut Population,
    slots: &mut [EvalWorkspace],
    threads: usize,
) -> Result<(), ModelError> {
    fn seed_slot(
        evaluator: &Evaluator<'_>,
        ind: &mut Individual,
        slot: &mut EvalWorkspace,
    ) -> Result<(), ModelError> {
        let e = evaluator.evaluate_with(slot, ind.placement())?;
        if !ind.is_evaluated() {
            ind.set_evaluation(e);
        }
        Ok(())
    }
    let individuals = population.individuals_mut();
    assert_eq!(individuals.len(), slots.len(), "one slot per individual");
    if threads <= 1 || individuals.len() <= 1 {
        for (ind, slot) in individuals.iter_mut().zip(slots.iter_mut()) {
            seed_slot(evaluator, ind, slot)?;
        }
        return Ok(());
    }
    let chunk = individuals.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (inds, slot_chunk) in individuals.chunks_mut(chunk).zip(slots.chunks_mut(chunk)) {
            handles.push(scope.spawn(move || -> Result<(), ModelError> {
                for (ind, slot) in inds.iter_mut().zip(slot_chunk.iter_mut()) {
                    seed_slot(evaluator, ind, slot)?;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("evaluation worker panicked")?;
        }
        Ok(())
    })
}

/// The child's lineage parent: whichever recorded parent differs from the
/// child in fewer genes (ties toward `a`). Deterministic, so results are
/// independent of scheduling.
fn closer_parent(parents: &Population, lineage: Lineage, child: &Placement) -> usize {
    if lineage.a == lineage.b {
        return lineage.a;
    }
    let diff = |idx: usize| {
        parents.individuals()[idx]
            .placement()
            .as_slice()
            .iter()
            .zip(child.as_slice())
            .filter(|(p, c)| p != c)
            .count()
    };
    if diff(lineage.b) < diff(lineage.a) {
        lineage.b
    } else {
        lineage.a
    }
}

/// Evaluates one child of a generation through the incremental path: adopt
/// the lineage parent's live topology, apply the placement diff, evaluate.
/// Falls back to the workspace rebuild path when the parent has no live
/// topology (a caller-assembled parent population).
fn evaluate_child(
    evaluator: &Evaluator<'_>,
    parents: &Population,
    parent_slots: &[EvalWorkspace],
    child: &mut Individual,
    slot: &mut EvalWorkspace,
    lineage: Lineage,
    moves: &mut Vec<(RouterId, Point)>,
) -> Result<(), ModelError> {
    let parent = closer_parent(parents, lineage, child.placement());
    let Some(parent_topo) = parent_slots[parent].topology() else {
        let e = evaluator.evaluate_with(slot, child.placement())?;
        if !child.is_evaluated() {
            child.set_evaluation(e);
        }
        return Ok(());
    };
    slot.adopt_topology(parent_topo);
    // The non-lineage parent donates disk caches for the recombined genes:
    // a crossover child's moved positions are verbatim that parent's, so
    // its cached disks transfer instead of being re-queried.
    let other = lineage.a + lineage.b - parent;
    let donor = if other != parent {
        parent_slots[other].topology()
    } else {
        None
    };
    let topo = slot.topology_mut().expect("topology just adopted");
    let e = evaluator.evaluate_moves_to_from(topo, child.placement(), moves, donor)?;
    if !child.is_evaluated() {
        child.set_evaluation(e);
    }
    Ok(())
}

/// Evaluates a reproduced generation through the **incremental** path:
/// every child's slot adopts its lineage parent's live topology (state
/// copy, buffer-reusing) and repairs the child's placement diff through
/// `WmnTopology::apply_moves` — one batch repair per child instead of a
/// full rebuild. Already-evaluated children (elites) skip the fitness
/// write but still get a live topology, so they can parent the next
/// generation.
///
/// Results are bit-identical to [`evaluate_population_with`] on the same
/// children (pinned by the `incremental_equivalence` suite) for every
/// thread count: no RNG is consumed and each child's evaluation is a pure
/// function of its placement.
///
/// # Errors
///
/// Propagates the first placement-validation failure.
///
/// # Panics
///
/// Panics if `parent_slots`, `child_slots`, or `lineage` lengths are
/// inconsistent with their populations, or a lineage index is out of
/// range.
pub fn evaluate_generation(
    evaluator: &Evaluator<'_>,
    parents: &Population,
    parent_slots: &[EvalWorkspace],
    children: &mut Population,
    child_slots: &mut [EvalWorkspace],
    lineage: &[Lineage],
    threads: usize,
) -> Result<(), ModelError> {
    assert_eq!(
        parents.len(),
        parent_slots.len(),
        "one slot per parent individual"
    );
    let individuals = children.individuals_mut();
    assert_eq!(
        individuals.len(),
        child_slots.len(),
        "one slot per child individual"
    );
    assert_eq!(individuals.len(), lineage.len(), "one lineage per child");
    if threads <= 1 || individuals.len() <= 1 {
        let mut moves = Vec::new();
        for ((ind, slot), &line) in individuals
            .iter_mut()
            .zip(child_slots.iter_mut())
            .zip(lineage)
        {
            evaluate_child(
                evaluator,
                parents,
                parent_slots,
                ind,
                slot,
                line,
                &mut moves,
            )?;
        }
        return Ok(());
    }
    let chunk = individuals.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ((inds, slot_chunk), line_chunk) in individuals
            .chunks_mut(chunk)
            .zip(child_slots.chunks_mut(chunk))
            .zip(lineage.chunks(chunk))
        {
            handles.push(scope.spawn(move || -> Result<(), ModelError> {
                let mut moves = Vec::new();
                for ((ind, slot), &line) in
                    inds.iter_mut().zip(slot_chunk.iter_mut()).zip(line_chunk)
                {
                    evaluate_child(
                        evaluator,
                        parents,
                        parent_slots,
                        ind,
                        slot,
                        line,
                        &mut moves,
                    )?;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("evaluation worker panicked")?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromosome::Individual;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn population(n: usize, seed: u64) -> (wmn_model::ProblemInstance, Population) {
        let instance = InstanceSpec::paper_normal()
            .unwrap()
            .generate(seed)
            .unwrap();
        let mut rng = rng_from_seed(seed);
        let pop: Population = (0..n)
            .map(|_| Individual::new(instance.random_placement(&mut rng)))
            .collect();
        (instance, pop)
    }

    #[test]
    fn parallel_equals_serial() {
        let (instance, pop) = population(33, 1);
        let evaluator = Evaluator::paper_default(&instance);
        let mut serial = pop.clone();
        evaluate_population(&evaluator, &mut serial, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            let mut par = pop.clone();
            evaluate_population(&evaluator, &mut par, threads).unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn already_evaluated_individuals_are_skipped() {
        let (instance, mut pop) = population(8, 2);
        let evaluator = Evaluator::paper_default(&instance);
        evaluate_population(&evaluator, &mut pop, 4).unwrap();
        let snapshot = pop.clone();
        // Re-running is a no-op.
        evaluate_population(&evaluator, &mut pop, 4).unwrap();
        assert_eq!(pop, snapshot);
    }

    #[test]
    fn persistent_workspaces_match_fresh_across_generations() {
        let (instance, _) = population(24, 5);
        let evaluator = Evaluator::paper_default(&instance);
        let mut workspaces = Vec::new();
        for round in 0..3 {
            // New "generation": same shape, different placements.
            let (_, generation) = population(24, 100 + round);
            let mut fresh = generation.clone();
            evaluate_population(&evaluator, &mut fresh, 4).unwrap();
            let mut reused = generation.clone();
            evaluate_population_with(&evaluator, &mut reused, 4, &mut workspaces).unwrap();
            assert_eq!(reused, fresh, "round {round}");
        }
        // Workspaces were grown once (4 workers over 24 individuals) and
        // kept across rounds.
        assert_eq!(workspaces.len(), 4);
    }

    #[test]
    fn more_threads_than_individuals_is_fine() {
        let (instance, mut pop) = population(3, 3);
        let evaluator = Evaluator::paper_default(&instance);
        evaluate_population(&evaluator, &mut pop, 16).unwrap();
        assert!(pop.individuals().iter().all(|i| i.is_evaluated()));
    }

    #[test]
    fn invalid_individual_surfaces_error() {
        let (instance, mut pop) = population(4, 4);
        pop.push(Individual::new(wmn_model::Placement::new())); // wrong length
        let evaluator = Evaluator::paper_default(&instance);
        assert!(evaluate_population(&evaluator, &mut pop, 4).is_err());
        assert!(evaluate_population(&evaluator, &mut pop, 1).is_err());
    }
}
