//! Threaded population evaluation.
//!
//! Fitness evaluation dominates GA runtime (a topology build per
//! individual), and individuals are independent — a textbook fork/join.
//! Implemented with `std::thread::scope` so the evaluator (which borrows
//! the instance) can be shared without `'static` gymnastics or extra
//! dependencies.

use crate::population::Population;
use wmn_metrics::evaluator::Evaluator;
use wmn_model::ModelError;

/// Evaluates every stale individual, using up to `threads` workers.
///
/// `threads <= 1` evaluates serially. The result is identical to serial
/// evaluation regardless of thread count (verified by engine tests).
///
/// # Errors
///
/// Propagates the first placement-validation failure (none occur for
/// populations built by the provided initializers and operators).
pub fn evaluate_population(
    evaluator: &Evaluator<'_>,
    population: &mut Population,
    threads: usize,
) -> Result<(), ModelError> {
    if threads <= 1 {
        return population.evaluate_all(evaluator);
    }
    let individuals = population.individuals_mut();
    let chunk = individuals.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for slice in individuals.chunks_mut(chunk) {
            handles.push(scope.spawn(move || -> Result<(), ModelError> {
                for ind in slice {
                    if !ind.is_evaluated() {
                        let e = evaluator.evaluate(ind.placement())?;
                        ind.set_evaluation(e);
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("evaluation worker panicked")?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromosome::Individual;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn population(n: usize, seed: u64) -> (wmn_model::ProblemInstance, Population) {
        let instance = InstanceSpec::paper_normal()
            .unwrap()
            .generate(seed)
            .unwrap();
        let mut rng = rng_from_seed(seed);
        let pop: Population = (0..n)
            .map(|_| Individual::new(instance.random_placement(&mut rng)))
            .collect();
        (instance, pop)
    }

    #[test]
    fn parallel_equals_serial() {
        let (instance, pop) = population(33, 1);
        let evaluator = Evaluator::paper_default(&instance);
        let mut serial = pop.clone();
        evaluate_population(&evaluator, &mut serial, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            let mut par = pop.clone();
            evaluate_population(&evaluator, &mut par, threads).unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn already_evaluated_individuals_are_skipped() {
        let (instance, mut pop) = population(8, 2);
        let evaluator = Evaluator::paper_default(&instance);
        evaluate_population(&evaluator, &mut pop, 4).unwrap();
        let snapshot = pop.clone();
        // Re-running is a no-op.
        evaluate_population(&evaluator, &mut pop, 4).unwrap();
        assert_eq!(pop, snapshot);
    }

    #[test]
    fn more_threads_than_individuals_is_fine() {
        let (instance, mut pop) = population(3, 3);
        let evaluator = Evaluator::paper_default(&instance);
        evaluate_population(&evaluator, &mut pop, 16).unwrap();
        assert!(pop.individuals().iter().all(|i| i.is_evaluated()));
    }

    #[test]
    fn invalid_individual_surfaces_error() {
        let (instance, mut pop) = population(4, 4);
        pop.push(Individual::new(wmn_model::Placement::new())); // wrong length
        let evaluator = Evaluator::paper_default(&instance);
        assert!(evaluate_population(&evaluator, &mut pop, 4).is_err());
        assert!(evaluate_population(&evaluator, &mut pop, 1).is_err());
    }
}
