//! Threaded population evaluation.
//!
//! Fitness evaluation dominates GA runtime (a topology build per
//! individual), and individuals are independent — a textbook fork/join.
//! Implemented with `std::thread::scope` so the evaluator (which borrows
//! the instance) can be shared without `'static` gymnastics or extra
//! dependencies.

use crate::population::Population;
use wmn_metrics::evaluator::{EvalWorkspace, Evaluator};
use wmn_model::ModelError;

/// Evaluates every stale individual, using up to `threads` workers and
/// fresh per-call workspaces; prefer [`evaluate_population_with`] in loops
/// (the GA engine does) so workspaces persist across generations.
///
/// `threads <= 1` evaluates serially. The result is identical to serial
/// evaluation regardless of thread count (verified by engine tests).
///
/// # Errors
///
/// Propagates the first placement-validation failure (none occur for
/// populations built by the provided initializers and operators).
pub fn evaluate_population(
    evaluator: &Evaluator<'_>,
    population: &mut Population,
    threads: usize,
) -> Result<(), ModelError> {
    evaluate_population_with(evaluator, population, threads, &mut Vec::new())
}

/// Evaluates every stale individual through caller-owned workspaces — one
/// per worker chunk, grown on demand — so a generational loop pays the
/// topology build once per worker for the whole run instead of once per
/// generation.
///
/// # Errors
///
/// Propagates the first placement-validation failure.
pub fn evaluate_population_with(
    evaluator: &Evaluator<'_>,
    population: &mut Population,
    threads: usize,
    workspaces: &mut Vec<EvalWorkspace>,
) -> Result<(), ModelError> {
    if threads <= 1 {
        if workspaces.is_empty() {
            workspaces.push(EvalWorkspace::new());
        }
        return population.evaluate_all_with(evaluator, &mut workspaces[0]);
    }
    let individuals = population.individuals_mut();
    let chunk = individuals.len().div_ceil(threads).max(1);
    let chunk_count = individuals.len().div_ceil(chunk);
    if workspaces.len() < chunk_count {
        workspaces.resize_with(chunk_count, EvalWorkspace::new);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slice, workspace) in individuals.chunks_mut(chunk).zip(workspaces.iter_mut()) {
            handles.push(scope.spawn(move || -> Result<(), ModelError> {
                // One workspace per worker: in-place topology reuse across
                // the whole chunk, no cross-thread sharing needed.
                for ind in slice {
                    if !ind.is_evaluated() {
                        let e = evaluator.evaluate_with(workspace, ind.placement())?;
                        ind.set_evaluation(e);
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("evaluation worker panicked")?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromosome::Individual;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn population(n: usize, seed: u64) -> (wmn_model::ProblemInstance, Population) {
        let instance = InstanceSpec::paper_normal()
            .unwrap()
            .generate(seed)
            .unwrap();
        let mut rng = rng_from_seed(seed);
        let pop: Population = (0..n)
            .map(|_| Individual::new(instance.random_placement(&mut rng)))
            .collect();
        (instance, pop)
    }

    #[test]
    fn parallel_equals_serial() {
        let (instance, pop) = population(33, 1);
        let evaluator = Evaluator::paper_default(&instance);
        let mut serial = pop.clone();
        evaluate_population(&evaluator, &mut serial, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            let mut par = pop.clone();
            evaluate_population(&evaluator, &mut par, threads).unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn already_evaluated_individuals_are_skipped() {
        let (instance, mut pop) = population(8, 2);
        let evaluator = Evaluator::paper_default(&instance);
        evaluate_population(&evaluator, &mut pop, 4).unwrap();
        let snapshot = pop.clone();
        // Re-running is a no-op.
        evaluate_population(&evaluator, &mut pop, 4).unwrap();
        assert_eq!(pop, snapshot);
    }

    #[test]
    fn persistent_workspaces_match_fresh_across_generations() {
        let (instance, _) = population(24, 5);
        let evaluator = Evaluator::paper_default(&instance);
        let mut workspaces = Vec::new();
        for round in 0..3 {
            // New "generation": same shape, different placements.
            let (_, generation) = population(24, 100 + round);
            let mut fresh = generation.clone();
            evaluate_population(&evaluator, &mut fresh, 4).unwrap();
            let mut reused = generation.clone();
            evaluate_population_with(&evaluator, &mut reused, 4, &mut workspaces).unwrap();
            assert_eq!(reused, fresh, "round {round}");
        }
        // Workspaces were grown once (4 workers over 24 individuals) and
        // kept across rounds.
        assert_eq!(workspaces.len(), 4);
    }

    #[test]
    fn more_threads_than_individuals_is_fine() {
        let (instance, mut pop) = population(3, 3);
        let evaluator = Evaluator::paper_default(&instance);
        evaluate_population(&evaluator, &mut pop, 16).unwrap();
        assert!(pop.individuals().iter().all(|i| i.is_evaluated()));
    }

    #[test]
    fn invalid_individual_surfaces_error() {
        let (instance, mut pop) = population(4, 4);
        pop.push(Individual::new(wmn_model::Placement::new())); // wrong length
        let evaluator = Evaluator::paper_default(&instance);
        assert!(evaluate_population(&evaluator, &mut pop, 4).is_err());
        assert!(evaluate_population(&evaluator, &mut pop, 1).is_err());
    }
}
