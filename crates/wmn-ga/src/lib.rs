//! Genetic algorithm for WMN router placement.
//!
//! The paper's second evaluation scenario (Tables 1–3, Figures 1–3) runs a
//! GA whose **initial population is produced by each ad hoc method**,
//! measuring how initialization quality drives convergence of the giant
//! component size. This crate provides that machinery:
//!
//! * [`chromosome`] / [`population`] — individuals (placement + cached
//!   evaluation), populations with diversity measures, and per-child
//!   [`Lineage`] reproduction metadata.
//! * [`selection`] — tournament (paper default), roulette-wheel, rank.
//! * [`crossover`] — single-point (paper default), two-point, uniform,
//!   blend, region-exchange.
//! * [`mutation`] — Gaussian jitter + uniform reset (paper stack) and a
//!   swap-pair operator mirroring the paper's swap movement; every
//!   operator plans its perturbation as `wmn-search` [`MoveAction`]
//!   deltas.
//! * [`init`] — ad-hoc-seeded population initialization
//!   ([`PopulationInit`]).
//! * [`engine`] — the elitist generational [`GaEngine`] with per-generation
//!   [`trace`] recording (the Figures 1–3 data). Evaluation is
//!   **topology-backed** by default ([`GaEvalMode::Incremental`]): each
//!   individual owns a live `WmnTopology`, and children evaluate as
//!   "parent state copy + incremental batch repair of the placement diff"
//!   — bit-identical to the full-rebuild reference
//!   ([`GaEvalMode::Rebuild`]) at a fraction of the cost (see the
//!   `ablation_ga_eval` bench).
//! * [`parallel`] — threaded fitness evaluation (both pipelines).
//!
//! [`MoveAction`]: wmn_search::movement::MoveAction
//!
//! # Quick start
//!
//! ```
//! use wmn_ga::prelude::*;
//! use wmn_metrics::Evaluator;
//! use wmn_model::prelude::*;
//! use wmn_placement::registry::AdHocMethod;
//!
//! let instance = InstanceSpec::paper_normal()?.generate(0)?;
//! let evaluator = Evaluator::paper_default(&instance);
//! let config = GaConfig::builder()
//!     .population_size(16)
//!     .generations(10)
//!     .build()
//!     .expect("valid config");
//! let engine = GaEngine::new(&evaluator, config);
//! let mut rng = rng_from_seed(1);
//! let outcome = engine.run(&PopulationInit::AdHoc(AdHocMethod::HotSpot), &mut rng)?;
//! println!("best giant component: {}", outcome.best_evaluation.giant_size());
//! # Ok::<(), wmn_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chromosome;
pub mod crossover;
pub mod engine;
pub mod init;
pub mod mutation;
pub mod parallel;
pub mod population;
pub mod selection;
pub mod trace;

pub use chromosome::Individual;
pub use crossover::CrossoverOp;
pub use engine::{GaConfig, GaConfigBuilder, GaEngine, GaEvalMode, GaOutcome};
pub use init::PopulationInit;
pub use mutation::MutationOp;
pub use population::{Lineage, Population};
pub use selection::SelectionOp;
pub use trace::{GaTrace, GenerationRecord};
pub use wmn_metrics::stats::ProgressPoint;

/// Convenient glob import of the GA toolkit.
pub mod prelude {
    pub use crate::chromosome::Individual;
    pub use crate::crossover::CrossoverOp;
    pub use crate::engine::{GaConfig, GaConfigBuilder, GaEngine, GaEvalMode, GaOutcome};
    pub use crate::init::PopulationInit;
    pub use crate::mutation::MutationOp;
    pub use crate::population::{Lineage, Population};
    pub use crate::selection::SelectionOp;
    pub use crate::trace::{GaTrace, GenerationRecord};
    pub use wmn_metrics::stats::ProgressPoint;
}
