//! Crossover operators on placement chromosomes.
//!
//! The chromosome is the vector of router positions, indexed by router id.
//! All operators produce two children and are **closed over the area**:
//! children of valid parents are valid (positions are only copied or
//! convexly combined, never invented outside the area).

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;
use wmn_model::geometry::{Point, Rect};
use wmn_model::placement::Placement;

/// A crossover strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CrossoverOp {
    /// Cut the router vector at one point; exchange tails.
    SinglePoint,
    /// Cut at two points; exchange the middle segment.
    TwoPoint,
    /// Exchange each gene independently with probability 1/2.
    Uniform,
    /// Children are convex blends: `c1 = t*a + (1-t)*b` per router with a
    /// shared random `t` in `[0, 1]` (and the mirror for `c2`).
    Blend,
    /// Geographic crossover: pick a random rectangle; routers whose
    /// position falls inside it (in the respective parent) exchange
    /// positions between the children.
    RegionExchange,
}

impl CrossoverOp {
    /// The configuration used for the paper reproduction (single point).
    pub fn paper_default() -> Self {
        CrossoverOp::SinglePoint
    }

    /// Crosses two parents, producing two children.
    ///
    /// # Panics
    ///
    /// Panics if the parents have different lengths.
    pub fn cross(
        &self,
        a: &Placement,
        b: &Placement,
        rng: &mut dyn RngCore,
    ) -> (Placement, Placement) {
        assert_eq!(a.len(), b.len(), "parents must have equal router counts");
        let n = a.len();
        if n == 0 {
            return (Placement::new(), Placement::new());
        }
        let (av, bv) = (a.as_slice(), b.as_slice());
        match *self {
            CrossoverOp::SinglePoint => {
                let cut = rng.gen_range(0..=n);
                let c1: Vec<Point> = av[..cut].iter().chain(&bv[cut..]).copied().collect();
                let c2: Vec<Point> = bv[..cut].iter().chain(&av[cut..]).copied().collect();
                (c1.into(), c2.into())
            }
            CrossoverOp::TwoPoint => {
                let mut i = rng.gen_range(0..=n);
                let mut j = rng.gen_range(0..=n);
                if i > j {
                    std::mem::swap(&mut i, &mut j);
                }
                let mut c1 = av.to_vec();
                let mut c2 = bv.to_vec();
                c1[i..j].copy_from_slice(&bv[i..j]);
                c2[i..j].copy_from_slice(&av[i..j]);
                (c1.into(), c2.into())
            }
            CrossoverOp::Uniform => {
                let mut c1 = Vec::with_capacity(n);
                let mut c2 = Vec::with_capacity(n);
                for k in 0..n {
                    if rng.gen::<bool>() {
                        c1.push(av[k]);
                        c2.push(bv[k]);
                    } else {
                        c1.push(bv[k]);
                        c2.push(av[k]);
                    }
                }
                (c1.into(), c2.into())
            }
            CrossoverOp::Blend => {
                let t: f64 = rng.gen();
                let c1: Vec<Point> = (0..n).map(|k| bv[k].lerp(av[k], t)).collect();
                let c2: Vec<Point> = (0..n).map(|k| av[k].lerp(bv[k], t)).collect();
                (c1.into(), c2.into())
            }
            CrossoverOp::RegionExchange => {
                // Random rectangle from two random corners over the parents'
                // bounding box (keeps the operator area-agnostic).
                let bounds = bounding_box(av.iter().chain(bv.iter()));
                let corner = |rng: &mut dyn RngCore| {
                    Point::new(
                        rng.gen_range(bounds.min().x..=bounds.max().x),
                        rng.gen_range(bounds.min().y..=bounds.max().y),
                    )
                };
                let region = Rect::new(corner(rng), corner(rng));
                let mut c1 = av.to_vec();
                let mut c2 = bv.to_vec();
                for k in 0..n {
                    if region.contains(av[k]) || region.contains(bv[k]) {
                        c1[k] = bv[k];
                        c2[k] = av[k];
                    }
                }
                (c1.into(), c2.into())
            }
        }
    }
}

fn bounding_box<'a, I: Iterator<Item = &'a Point>>(points: I) -> Rect {
    let mut min = Point::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min = Point::new(min.x.min(p.x), min.y.min(p.y));
        max = Point::new(max.x.max(p.x), max.y.max(p.y));
    }
    if !min.is_finite() || !max.is_finite() {
        return Rect::new(Point::origin(), Point::origin());
    }
    Rect::new(min, max)
}

impl Default for CrossoverOp {
    fn default() -> Self {
        CrossoverOp::paper_default()
    }
}

impl fmt::Display for CrossoverOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CrossoverOp::SinglePoint => "single-point",
            CrossoverOp::TwoPoint => "two-point",
            CrossoverOp::Uniform => "uniform",
            CrossoverOp::Blend => "blend",
            CrossoverOp::RegionExchange => "region-exchange",
        };
        f.write_str(name)
    }
}

/// All built-in crossover operators (for sweeps and ablation benches).
pub fn all_crossovers() -> [CrossoverOp; 5] {
    [
        CrossoverOp::SinglePoint,
        CrossoverOp::TwoPoint,
        CrossoverOp::Uniform,
        CrossoverOp::Blend,
        CrossoverOp::RegionExchange,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::rng::rng_from_seed;
    use wmn_model::Area;

    fn parents(n: usize) -> (Placement, Placement) {
        let a: Placement = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let b: Placement = (0..n).map(|i| Point::new(i as f64, 100.0)).collect();
        (a, b)
    }

    #[test]
    fn children_inherit_every_gene_from_some_parent() {
        let (a, b) = parents(16);
        let mut rng = rng_from_seed(1);
        for op in [
            CrossoverOp::SinglePoint,
            CrossoverOp::TwoPoint,
            CrossoverOp::Uniform,
            CrossoverOp::RegionExchange,
        ] {
            let (c1, c2) = op.cross(&a, &b, &mut rng);
            for k in 0..16 {
                let (pa, pb) = (a.as_slice()[k], b.as_slice()[k]);
                for c in [&c1, &c2] {
                    let g = c.as_slice()[k];
                    assert!(g == pa || g == pb, "{op}: gene {k} invented {g}");
                }
            }
            // Genes swap pairwise: c1[k] == a[k] iff c2[k] == b[k].
            for k in 0..16 {
                let (pa, pb) = (a.as_slice()[k], b.as_slice()[k]);
                if c1.as_slice()[k] == pa {
                    assert_eq!(c2.as_slice()[k], pb);
                } else {
                    assert_eq!(c2.as_slice()[k], pa);
                }
            }
        }
    }

    #[test]
    fn blend_children_stay_on_segment() {
        let (a, b) = parents(8);
        let mut rng = rng_from_seed(2);
        let (c1, c2) = CrossoverOp::Blend.cross(&a, &b, &mut rng);
        for k in 0..8 {
            for c in [&c1, &c2] {
                let g = c.as_slice()[k];
                assert_eq!(g.x, k as f64, "x is shared by both parents");
                assert!((0.0..=100.0).contains(&g.y), "convex blend stays in range");
            }
        }
        // Mirror property: c1 + c2 == a + b componentwise.
        for k in 0..8 {
            let sum_c = c1.as_slice()[k].y + c2.as_slice()[k].y;
            assert!((sum_c - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn children_stay_in_area_for_in_area_parents() {
        let area = Area::square(100.0).unwrap();
        let (a, b) = parents(12);
        let mut rng = rng_from_seed(3);
        for op in all_crossovers() {
            let (c1, c2) = op.cross(&a, &b, &mut rng);
            for c in [c1, c2] {
                assert!(c.validate(&area, 12).is_ok(), "{op} escaped the area");
            }
        }
    }

    #[test]
    fn single_point_preserves_prefix_suffix_structure() {
        let (a, b) = parents(10);
        let mut rng = rng_from_seed(7);
        let (c1, _) = CrossoverOp::SinglePoint.cross(&a, &b, &mut rng);
        // c1 must be a-prefix then b-suffix: find the switch point and check
        // monotonicity (no interleaving).
        let ys: Vec<f64> = c1.as_slice().iter().map(|p| p.y).collect();
        let first_b = ys.iter().position(|&y| y == 100.0).unwrap_or(10);
        assert!(ys[..first_b].iter().all(|&y| y == 0.0));
        assert!(ys[first_b..].iter().all(|&y| y == 100.0));
    }

    #[test]
    fn empty_parents_yield_empty_children() {
        let mut rng = rng_from_seed(1);
        for op in all_crossovers() {
            let (c1, c2) = op.cross(&Placement::new(), &Placement::new(), &mut rng);
            assert!(c1.is_empty() && c2.is_empty(), "{op}");
        }
    }

    #[test]
    #[should_panic(expected = "equal router counts")]
    fn mismatched_parents_panic() {
        let (a, _) = parents(5);
        let (b, _) = parents(6);
        let mut rng = rng_from_seed(1);
        let _ = CrossoverOp::SinglePoint.cross(&a, &b, &mut rng);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, b) = parents(20);
        for op in all_crossovers() {
            let r1 = op.cross(&a, &b, &mut rng_from_seed(9));
            let r2 = op.cross(&a, &b, &mut rng_from_seed(9));
            assert_eq!(r1, r2, "{op}");
        }
    }
}
