//! Populations of individuals.

use crate::chromosome::Individual;
use wmn_metrics::evaluator::{EvalWorkspace, Evaluation, Evaluator};
use wmn_model::ModelError;

/// Reproduction metadata for one child of a generation: the indices (into
/// the parent generation) of the two individuals whose genetic material
/// produced it. Clones and elites record the copied parent in both slots.
///
/// The topology-backed evaluation path uses this to pick the child's
/// *lineage parent* — the recorded parent whose placement differs in the
/// fewest genes — and evaluate the child as that parent's live topology
/// plus the diff, instead of rebuilding from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lineage {
    /// First recorded parent (the prefix donor for positional crossovers).
    pub a: usize,
    /// Second recorded parent.
    pub b: usize,
}

impl Lineage {
    /// Lineage of a straight copy (clone child or elite).
    pub fn cloned(parent: usize) -> Self {
        Lineage {
            a: parent,
            b: parent,
        }
    }
}

/// A GA population.
///
/// Invariant maintained by the engine (not the type): all individuals are
/// evaluated between selection and reproduction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Population {
    individuals: Vec<Individual>,
}

impl Population {
    /// An empty population.
    pub fn new() -> Self {
        Population::default()
    }

    /// Wraps a vector of individuals.
    pub fn from_individuals(individuals: Vec<Individual>) -> Self {
        Population { individuals }
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.individuals.len()
    }

    /// Returns `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.individuals.is_empty()
    }

    /// The individuals.
    pub fn individuals(&self) -> &[Individual] {
        &self.individuals
    }

    /// Mutable access to the individuals.
    pub fn individuals_mut(&mut self) -> &mut [Individual] {
        &mut self.individuals
    }

    /// Adds an individual.
    pub fn push(&mut self, individual: Individual) {
        self.individuals.push(individual);
    }

    /// Evaluates every stale individual with `evaluator`, through one
    /// fresh [`EvalWorkspace`]; prefer
    /// [`Population::evaluate_all_with`] in loops so the workspace — and
    /// its topology buffers — carry over between calls.
    ///
    /// # Errors
    ///
    /// Propagates placement validation (first failure aborts).
    pub fn evaluate_all(&mut self, evaluator: &Evaluator<'_>) -> Result<(), ModelError> {
        self.evaluate_all_with(evaluator, &mut EvalWorkspace::new())
    }

    /// Evaluates every stale individual through a caller-owned
    /// [`EvalWorkspace`], so the per-individual topology is rebuilt in
    /// place with zero allocations once the workspace is warm.
    ///
    /// # Errors
    ///
    /// Propagates placement validation (first failure aborts).
    pub fn evaluate_all_with(
        &mut self,
        evaluator: &Evaluator<'_>,
        workspace: &mut EvalWorkspace,
    ) -> Result<(), ModelError> {
        for ind in &mut self.individuals {
            if !ind.is_evaluated() {
                let e = evaluator.evaluate_with(workspace, ind.placement())?;
                ind.set_evaluation(e);
            }
        }
        Ok(())
    }

    /// Index of the best (highest-fitness) individual, `None` when empty.
    /// Ties break toward the lowest index.
    pub fn best_index(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, ind) in self.individuals.iter().enumerate() {
            let f = ind.fitness();
            if best.is_none_or(|(_, bf)| f > bf) {
                best = Some((i, f));
            }
        }
        best.map(|(i, _)| i)
    }

    /// The best individual, `None` when empty.
    pub fn best(&self) -> Option<&Individual> {
        self.best_index().map(|i| &self.individuals[i])
    }

    /// The best evaluation, `None` when empty or unevaluated.
    pub fn best_evaluation(&self) -> Option<Evaluation> {
        self.best().and_then(|b| b.evaluation())
    }

    /// Mean fitness over evaluated individuals (0 when none).
    pub fn mean_fitness(&self) -> f64 {
        let evaluated: Vec<f64> = self
            .individuals
            .iter()
            .filter(|i| i.is_evaluated())
            .map(|i| i.fitness())
            .collect();
        if evaluated.is_empty() {
            0.0
        } else {
            evaluated.iter().sum::<f64>() / evaluated.len() as f64
        }
    }

    /// Indices sorted by fitness descending (ties by index; unevaluated
    /// individuals sink to the end).
    pub fn ranked_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.individuals.len()).collect();
        idx.sort_by(|&a, &b| {
            self.individuals[b]
                .fitness()
                .partial_cmp(&self.individuals[a].fitness())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }

    /// Population diversity: mean over routers of the standard deviation of
    /// each coordinate across individuals. Zero for a converged population.
    pub fn positional_diversity(&self) -> f64 {
        if self.individuals.len() < 2 {
            return 0.0;
        }
        let n_routers = self.individuals[0].placement().len();
        if n_routers == 0 {
            return 0.0;
        }
        let m = self.individuals.len() as f64;
        let mut total = 0.0;
        for r in 0..n_routers {
            let (mut sx, mut sy, mut sx2, mut sy2) = (0.0, 0.0, 0.0, 0.0);
            for ind in &self.individuals {
                let p = ind.placement().as_slice()[r];
                sx += p.x;
                sy += p.y;
                sx2 += p.x * p.x;
                sy2 += p.y * p.y;
            }
            let var_x = (sx2 / m - (sx / m) * (sx / m)).max(0.0);
            let var_y = (sy2 / m - (sy / m) * (sy / m)).max(0.0);
            total += var_x.sqrt() + var_y.sqrt();
        }
        total / (2.0 * n_routers as f64)
    }
}

impl FromIterator<Individual> for Population {
    fn from_iter<I: IntoIterator<Item = Individual>>(iter: I) -> Self {
        Population {
            individuals: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_metrics::measurement::NetworkMeasurement;
    use wmn_model::geometry::Point;
    use wmn_model::placement::Placement;

    fn ind(points: Vec<Point>, fitness: Option<f64>) -> Individual {
        let mut i = Individual::new(Placement::from_points(points));
        if let Some(f) = fitness {
            i.set_evaluation(Evaluation {
                measurement: NetworkMeasurement::default(),
                fitness: f,
            });
        }
        i
    }

    #[test]
    fn best_and_ranking() {
        let pop = Population::from_individuals(vec![
            ind(vec![Point::new(0.0, 0.0)], Some(0.3)),
            ind(vec![Point::new(1.0, 1.0)], Some(0.9)),
            ind(vec![Point::new(2.0, 2.0)], Some(0.6)),
        ]);
        assert_eq!(pop.best_index(), Some(1));
        assert_eq!(pop.ranked_indices(), vec![1, 2, 0]);
        assert!((pop.mean_fitness() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn unevaluated_sink_to_the_end() {
        let pop = Population::from_individuals(vec![
            ind(vec![Point::new(0.0, 0.0)], None),
            ind(vec![Point::new(1.0, 1.0)], Some(0.1)),
        ]);
        assert_eq!(pop.ranked_indices(), vec![1, 0]);
        assert_eq!(pop.best_index(), Some(1));
    }

    #[test]
    fn empty_population() {
        let pop = Population::new();
        assert!(pop.is_empty());
        assert_eq!(pop.best_index(), None);
        assert_eq!(pop.mean_fitness(), 0.0);
        assert_eq!(pop.positional_diversity(), 0.0);
    }

    #[test]
    fn diversity_zero_when_converged() {
        let pop = Population::from_individuals(vec![
            ind(vec![Point::new(5.0, 5.0)], None),
            ind(vec![Point::new(5.0, 5.0)], None),
            ind(vec![Point::new(5.0, 5.0)], None),
        ]);
        assert_eq!(pop.positional_diversity(), 0.0);
    }

    #[test]
    fn diversity_positive_when_spread() {
        let pop = Population::from_individuals(vec![
            ind(vec![Point::new(0.0, 0.0)], None),
            ind(vec![Point::new(10.0, 10.0)], None),
        ]);
        assert!(pop.positional_diversity() > 0.0);
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let pop = Population::from_individuals(vec![
            ind(vec![Point::new(0.0, 0.0)], Some(0.5)),
            ind(vec![Point::new(1.0, 1.0)], Some(0.5)),
        ]);
        assert_eq!(pop.best_index(), Some(0));
    }
}
