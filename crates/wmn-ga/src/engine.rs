//! The generational GA engine over a **population of live topologies**.
//!
//! A classical elitist generational GA over placement chromosomes:
//! evaluate, record, select (tournament by default), cross (single-point by
//! default), mutate (jitter + reset stack), repeat. The engine records a
//! [`GaTrace`] — per-generation best giant component size — which is
//! exactly the data plotted in the paper's Figures 1–3.
//!
//! # Topology-backed evaluation
//!
//! Under the default [`GaEvalMode::Incremental`], every individual owns an
//! `EvalWorkspace` slot holding a **live `WmnTopology`** of its placement.
//! A child is evaluated as its *lineage parent's* topology plus a delta:
//! the worker copies the parent's state into the child's slot
//! (`WmnTopology::clone_from`, buffer-reusing) and repairs the placement
//! diff — crossover genes and mutation moves folded into one batch —
//! through the incremental engine (`apply_moves`), instead of rebuilding
//! adjacency/components/coverage from scratch per child.
//!
//! Invariants of the representation (mirroring the `wmn-graph::topology`
//! module docs):
//!
//! * after every evaluation step, individual `i`'s slot holds a topology
//!   whose state equals a fresh build of `individuals[i].placement()` —
//!   elites included (they skip the fitness write but still sync their
//!   topology so they can parent the next generation);
//! * chromosomes (placements) remain the source of truth; topologies are
//!   derived state and never feed back into reproduction;
//! * reproduction consumes the RNG identically in every mode, and
//!   evaluation consumes none, so [`GaEvalMode::Rebuild`] (the
//!   full-rebuild reference pipeline) and any thread count produce
//!   **bit-identical** outcomes (pinned by the `incremental_equivalence`
//!   suite; the `ablation_ga_eval` bench measures the gap).

use crate::crossover::CrossoverOp;
use crate::init::PopulationInit;
use crate::mutation::MutationOp;
use crate::parallel;
use crate::population::{Lineage, Population};
use crate::selection::SelectionOp;
use crate::trace::{GaTrace, GenerationRecord};
use rand::{Rng, RngCore};
use std::fmt;
use wmn_graph::topology::ConnectivityMode;
use wmn_metrics::evaluator::{EvalWorkspace, Evaluation, Evaluator};
use wmn_model::placement::Placement;
use wmn_model::ModelError;
use wmn_obs::{phase, ApplyPhases, EngineStats, NoopRecorder, Recorder};
use wmn_search::movement::MoveAction;

/// How the engine evaluates the individuals of each generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum GaEvalMode {
    /// Topology-backed delta evaluation (the default): children adopt
    /// their lineage parent's live topology and repair the placement diff
    /// through the incremental batch engine, with connectivity repaired
    /// component-locally by the dynamic connectivity engine
    /// ([`ConnectivityMode::Dynamic`]).
    #[default]
    Incremental,
    /// The incremental pipeline with connectivity pinned to the
    /// whole-graph DSU rescan ([`ConnectivityMode::DsuRescan`]) — the
    /// dynamic connectivity engine's reference oracle, kept so the
    /// equivalence suites can pin the new engine end-to-end through full
    /// GA runs.
    IncrementalDsuRescan,
    /// Full-rebuild reference pipeline: every child is evaluated through a
    /// per-worker workspace whose topology is rebuilt in place per
    /// candidate — the pre-topology-backed behavior, kept as the
    /// bit-identical baseline for equivalence tests and the
    /// `ablation_ga_eval` bench.
    Rebuild,
}

impl fmt::Display for GaEvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaEvalMode::Incremental => write!(f, "incremental"),
            GaEvalMode::IncrementalDsuRescan => write!(f, "incremental-dsu-rescan"),
            GaEvalMode::Rebuild => write!(f, "rebuild"),
        }
    }
}

/// GA parameters (see [`GaConfigBuilder`] for construction).
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population_size: usize,
    /// Number of generations to run (the paper's figures run ~800).
    pub generations: usize,
    /// Probability that a selected pair is crossed (else cloned).
    pub crossover_rate: f64,
    /// Number of elites copied unchanged into the next generation.
    pub elitism: usize,
    /// Parent selection.
    pub selection: SelectionOp,
    /// Crossover operator.
    pub crossover: CrossoverOp,
    /// Mutation stack applied to every non-elite child, in order.
    pub mutations: Vec<MutationOp>,
    /// Worker threads for fitness evaluation (1 = serial).
    pub threads: usize,
    /// Evaluation pipeline (incremental topology-backed vs full rebuild);
    /// outcomes are bit-identical either way.
    pub eval_mode: GaEvalMode,
    /// Override of the dynamic connectivity engine's per-deletion cost
    /// cap, pinned onto every evaluation slot (`None` = engine default).
    /// `Some(0)` forces the rescan fallback on every deletion search —
    /// outcomes stay bit-identical (all repair paths agree), only the
    /// work profile changes; fault plans use this to sabotage repair cost.
    pub connectivity_cost_cap: Option<usize>,
}

impl GaConfig {
    /// The configuration used for the paper reproduction: population 64,
    /// 800 generations, single-point crossover at 0.8, tournament(3),
    /// elitism 2, jitter+reset mutation.
    pub fn paper_default() -> Self {
        GaConfig {
            population_size: 64,
            generations: 800,
            crossover_rate: 0.8,
            elitism: 2,
            selection: SelectionOp::paper_default(),
            crossover: CrossoverOp::paper_default(),
            mutations: MutationOp::paper_default_stack(),
            threads: 1,
            eval_mode: GaEvalMode::Incremental,
            connectivity_cost_cap: None,
        }
    }

    /// Starts a builder from the paper defaults.
    pub fn builder() -> GaConfigBuilder {
        GaConfigBuilder {
            config: GaConfig::paper_default(),
        }
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::paper_default()
    }
}

/// Builder for [`GaConfig`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct GaConfigBuilder {
    config: GaConfig,
}

impl GaConfigBuilder {
    /// Sets the population size.
    pub fn population_size(&mut self, n: usize) -> &mut Self {
        self.config.population_size = n;
        self
    }

    /// Sets the generation count.
    pub fn generations(&mut self, n: usize) -> &mut Self {
        self.config.generations = n;
        self
    }

    /// Sets the crossover rate.
    pub fn crossover_rate(&mut self, rate: f64) -> &mut Self {
        self.config.crossover_rate = rate;
        self
    }

    /// Sets the elite count.
    pub fn elitism(&mut self, n: usize) -> &mut Self {
        self.config.elitism = n;
        self
    }

    /// Sets the selection operator.
    pub fn selection(&mut self, op: SelectionOp) -> &mut Self {
        self.config.selection = op;
        self
    }

    /// Sets the crossover operator.
    pub fn crossover(&mut self, op: CrossoverOp) -> &mut Self {
        self.config.crossover = op;
        self
    }

    /// Replaces the mutation stack.
    pub fn mutations(&mut self, ops: Vec<MutationOp>) -> &mut Self {
        self.config.mutations = ops;
        self
    }

    /// Sets the evaluation thread count.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.config.threads = n.max(1);
        self
    }

    /// Sets the evaluation pipeline (incremental vs full rebuild).
    pub fn eval_mode(&mut self, mode: GaEvalMode) -> &mut Self {
        self.config.eval_mode = mode;
        self
    }

    /// Overrides the connectivity engine's per-deletion cost cap on every
    /// evaluation slot (see [`GaConfig::connectivity_cost_cap`]).
    pub fn connectivity_cost_cap(&mut self, cap: Option<usize>) -> &mut Self {
        self.config.connectivity_cost_cap = cap;
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration is inconsistent
    /// (zero population, elitism not smaller than the population,
    /// crossover rate outside `[0, 1]`).
    pub fn build(&self) -> Result<GaConfig, String> {
        let c = &self.config;
        if c.population_size == 0 {
            return Err("population_size must be positive".to_owned());
        }
        if c.elitism >= c.population_size {
            return Err(format!(
                "elitism ({}) must be smaller than population_size ({})",
                c.elitism, c.population_size
            ));
        }
        if !(0.0..=1.0).contains(&c.crossover_rate) || !c.crossover_rate.is_finite() {
            return Err(format!(
                "crossover_rate must be in [0, 1], got {}",
                c.crossover_rate
            ));
        }
        Ok(c.clone())
    }
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOutcome {
    /// Best placement found across all generations.
    pub best_placement: Placement,
    /// Evaluation of the best placement.
    pub best_evaluation: Evaluation,
    /// Per-generation history (the Figures 1–3 data).
    pub trace: GaTrace,
    /// The final population (exposed for diversity analyses).
    pub final_population: Population,
}

/// The GA engine, bound to an evaluator.
///
/// # Examples
///
/// ```
/// use wmn_ga::engine::{GaConfig, GaEngine};
/// use wmn_ga::init::PopulationInit;
/// use wmn_metrics::Evaluator;
/// use wmn_model::prelude::*;
/// use wmn_placement::registry::AdHocMethod;
///
/// let instance = InstanceSpec::paper_normal()?.generate(2)?;
/// let evaluator = Evaluator::paper_default(&instance);
/// let config = GaConfig::builder()
///     .population_size(16)
///     .generations(5)
///     .build()
///     .expect("valid config");
/// let engine = GaEngine::new(&evaluator, config);
///
/// let mut rng = rng_from_seed(1);
/// let outcome = engine.run(&PopulationInit::AdHoc(AdHocMethod::HotSpot), &mut rng)?;
/// assert_eq!(outcome.trace.len(), 6); // initial + 5 generations
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct GaEngine<'e, 'i> {
    evaluator: &'e Evaluator<'i>,
    config: GaConfig,
}

impl<'e, 'i> GaEngine<'e, 'i> {
    /// Creates an engine with the given configuration.
    pub fn new(evaluator: &'e Evaluator<'i>, config: GaConfig) -> Self {
        GaEngine { evaluator, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    fn record(&self, generation: usize, population: &Population, trace: &mut GaTrace) {
        let best = population
            .best_evaluation()
            .expect("population evaluated before recording");
        trace.push(GenerationRecord::new(
            generation,
            best.fitness,
            best.giant_size(),
            best.covered_clients(),
            population.mean_fitness(),
            population.positional_diversity(),
        ));
    }

    /// Produces the next generation from an evaluated population: elites,
    /// then selection → crossover/clone → mutation, exactly as one
    /// generational step of [`run`](GaEngine::run) (which calls this).
    /// Mutations are planned as [`MoveAction`] deltas and applied to the
    /// chromosome; the returned [`Lineage`] records each child's parents so
    /// evaluation can take the incremental parent-plus-diff path.
    pub fn reproduce(
        &self,
        population: &Population,
        rng: &mut dyn RngCore,
    ) -> (Population, Vec<Lineage>) {
        let instance = self.evaluator.instance();
        let mut next = Population::new();
        let mut lineage = Vec::with_capacity(self.config.population_size);
        // Elites survive unchanged (evaluation cache carries over).
        for &idx in population.ranked_indices().iter().take(self.config.elitism) {
            next.push(population.individuals()[idx].clone());
            lineage.push(Lineage::cloned(idx));
        }
        // Offspring.
        let mut actions: Vec<MoveAction> = Vec::new();
        while next.len() < self.config.population_size {
            let pa = self.config.selection.select(population, rng);
            let pb = self.config.selection.select(population, rng);
            let (crossed, (mut c1, mut c2)) = if rng.gen::<f64>() < self.config.crossover_rate {
                (
                    true,
                    self.config.crossover.cross(
                        population.individuals()[pa].placement(),
                        population.individuals()[pb].placement(),
                        rng,
                    ),
                )
            } else {
                (
                    false,
                    (
                        population.individuals()[pa].placement().clone(),
                        population.individuals()[pb].placement().clone(),
                    ),
                )
            };
            self.mutate_stack(&mut c1, instance, rng, &mut actions);
            next.push(c1.into());
            lineage.push(if crossed {
                Lineage { a: pa, b: pb }
            } else {
                Lineage::cloned(pa)
            });
            if next.len() < self.config.population_size {
                self.mutate_stack(&mut c2, instance, rng, &mut actions);
                next.push(c2.into());
                lineage.push(if crossed {
                    Lineage { a: pa, b: pb }
                } else {
                    Lineage::cloned(pb)
                });
            }
        }
        (next, lineage)
    }

    /// Applies the configured mutation stack to one chromosome through the
    /// plan-then-apply path, reusing `actions` as scratch. RNG consumption
    /// is identical to calling `MutationOp::mutate` per operator.
    fn mutate_stack(
        &self,
        placement: &mut Placement,
        instance: &wmn_model::ProblemInstance,
        rng: &mut dyn RngCore,
        actions: &mut Vec<MoveAction>,
    ) {
        for op in &self.config.mutations {
            op.plan(placement, instance, rng, actions);
            for action in actions.iter() {
                action.apply_to_placement(placement);
            }
        }
    }

    /// Runs the GA from an initial population built by `init`.
    ///
    /// # Errors
    ///
    /// Propagates placement validation failures from evaluation (none occur
    /// with the built-in initializers and operators).
    pub fn run(
        &self,
        init: &PopulationInit,
        rng: &mut dyn RngCore,
    ) -> Result<GaOutcome, ModelError> {
        self.run_recorded(init, rng, &mut NoopRecorder)
    }

    /// Like [`run`](Self::run), additionally emitting run telemetry to
    /// `recorder`: `ga.*` counters, per-generation engine work deltas (as
    /// value histograms), and the total engine work-counter profile summed
    /// over the evaluation slots in slot order — attributed to a nested
    /// phase tree. The run opens a `ga` phase with `init` / `evaluate`
    /// child scopes; inside `evaluate`, the batch-repair work reported by
    /// the slot topologies' [`ApplyPhases`] buckets telescopes into
    /// `apply_moves` → `edge_repair` / `component_repair` / `coverage`
    /// scopes (component repair further staged into connectivity
    /// `insert` / `delete`), and whatever evaluation work the buckets
    /// don't cover (`clone_from` state copies, single-move diffs, full
    /// rebuilds of the `Rebuild` oracle) stays attributed to `evaluate`
    /// itself. The per-phase slices sum to exactly the flat totals, so
    /// the flat counter profile is byte-identical to what earlier
    /// versions emitted in one call. Wall-clock reproduce/evaluate spans
    /// are recorded under the same phases, informational-only.
    ///
    /// Results are bit-identical to [`run`](Self::run); with a disabled
    /// recorder the extra cost is one branch per generation. Under the
    /// incremental eval modes the emitted counters are also independent of
    /// the thread count, because child `i` is always evaluated in slot `i`
    /// (the `Rebuild` oracle's per-worker workspaces make its disk-cache
    /// counters depend on worker assignment — record it with one thread
    /// when exact reproducibility matters).
    ///
    /// # Errors
    ///
    /// Propagates placement validation failures from evaluation, exactly
    /// as [`run`](Self::run).
    pub fn run_recorded(
        &self,
        init: &PopulationInit,
        rng: &mut dyn RngCore,
        recorder: &mut dyn Recorder,
    ) -> Result<GaOutcome, ModelError> {
        let mut population =
            init.build(self.evaluator.instance(), self.config.population_size, rng);
        let mut backend =
            EvalBackend::new(self.config.eval_mode, self.config.connectivity_cost_cap);
        let init_clock = recorder.enabled().then(std::time::Instant::now);
        backend.evaluate_initial(self.evaluator, &mut population, self.config.threads)?;
        let init_nanos = elapsed_nanos(init_clock);
        let mut engine_prev = recorder.enabled().then(|| backend.engine_totals());
        let init_totals = engine_prev.unwrap_or_default();
        let mut reproduce_nanos = 0u64;
        let mut evaluate_nanos = 0u64;

        let mut trace = GaTrace::new();
        self.record(0, &population, &mut trace);
        let mut best_placement = population
            .best()
            .expect("nonempty population")
            .placement()
            .clone();
        let mut best_evaluation = population.best_evaluation().expect("evaluated");

        for generation in 1..=self.config.generations {
            let clock = engine_prev.is_some().then(std::time::Instant::now);
            let (next, lineage) = self.reproduce(&population, rng);
            reproduce_nanos += elapsed_nanos(clock);
            let parents = std::mem::replace(&mut population, next);
            let clock = engine_prev.is_some().then(std::time::Instant::now);
            backend.evaluate_generation(
                self.evaluator,
                &parents,
                &mut population,
                &lineage,
                self.config.threads,
            )?;
            evaluate_nanos += elapsed_nanos(clock);
            self.record(generation, &population, &mut trace);
            if let Some(prev) = engine_prev.as_mut() {
                let now = backend.engine_totals();
                let delta = now.delta_since(prev);
                recorder.value(
                    "ga.generation.diff_routers",
                    delta.topology.batch_moved_routers,
                );
                recorder.value(
                    "ga.generation.connectivity_repairs",
                    delta.connectivity.repairs,
                );
                *prev = now;
            }

            let gen_best = population.best_evaluation().expect("evaluated");
            if gen_best.fitness > best_evaluation.fitness {
                best_evaluation = gen_best;
                best_placement = population.best().expect("nonempty").placement().clone();
            }
        }

        if recorder.enabled() {
            recorder.counter("ga.generations", self.config.generations as u64);
            recorder.counter(
                "ga.children_evaluated",
                (self.config.generations * self.config.population_size) as u64,
            );
            // Telescoped emission: the engine totals split into per-phase
            // slices that sum to exactly the one-call totals, so the flat
            // counter profile (and any committed baseline of it) is
            // unchanged — only the attribution tree gains structure.
            let totals = backend.engine_totals();
            let phases = backend.phase_totals();
            let mut ga = phase(recorder, "ga");
            ga.span("reproduce", reproduce_nanos);
            {
                let mut init_phase = phase(&mut ga, "init");
                init_phase.span("evaluate_initial", init_nanos);
                init_totals.record_counters(&mut init_phase);
            }
            {
                let mut eval = phase(&mut ga, "evaluate");
                eval.span("evaluate_generations", evaluate_nanos);
                let generation_work = totals.delta_since(&init_totals);
                let residual = generation_work.delta_since(&phases.attributed());
                residual.record_counters(&mut eval);
                let mut apply = phase(&mut eval, "apply_moves");
                phases.record_counters(&mut apply);
            }
        }

        Ok(GaOutcome {
            best_placement,
            best_evaluation,
            trace,
            final_population: population,
        })
    }
}

/// The nanoseconds since `clock`, or 0 for `None` (the disabled-recorder
/// path, which never reads the clock at all).
fn elapsed_nanos(clock: Option<std::time::Instant>) -> u64 {
    clock.map_or(0, |c| {
        u64::try_from(c.elapsed().as_nanos()).unwrap_or(u64::MAX)
    })
}

/// The engine's per-run evaluation state: either the topology-backed slot
/// pool (one live topology per individual, double-buffered across
/// generations) or the legacy per-worker workspace set of the rebuild
/// reference pipeline.
#[derive(Debug)]
enum EvalBackend {
    Incremental {
        /// One slot per individual of the *current* population.
        slots: Vec<EvalWorkspace>,
        /// Last generation's slots, recycled as the next children's lease
        /// pool (their warm topologies get `clone_from`'d over).
        spare: Vec<EvalWorkspace>,
        /// Connectivity repair strategy pinned onto the slot topologies
        /// (children inherit it through `clone_from`, so one pass after
        /// the initial evaluation pins the whole run).
        connectivity: ConnectivityMode,
        /// Cost-cap override pinned onto the slot topologies the same way
        /// (it also travels with `clone_from`).
        cost_cap: Option<usize>,
    },
    Rebuild {
        /// One workspace per evaluation worker, persistent across
        /// generations.
        workspaces: Vec<EvalWorkspace>,
    },
}

impl EvalBackend {
    fn new(mode: GaEvalMode, cost_cap: Option<usize>) -> Self {
        match mode {
            GaEvalMode::Incremental => EvalBackend::Incremental {
                slots: Vec::new(),
                spare: Vec::new(),
                connectivity: ConnectivityMode::Dynamic,
                cost_cap,
            },
            GaEvalMode::IncrementalDsuRescan => EvalBackend::Incremental {
                slots: Vec::new(),
                spare: Vec::new(),
                connectivity: ConnectivityMode::DsuRescan,
                cost_cap,
            },
            GaEvalMode::Rebuild => EvalBackend::Rebuild {
                workspaces: Vec::new(),
            },
        }
    }

    fn evaluate_initial(
        &mut self,
        evaluator: &Evaluator<'_>,
        population: &mut Population,
        threads: usize,
    ) -> Result<(), ModelError> {
        match self {
            EvalBackend::Incremental {
                slots,
                connectivity,
                cost_cap,
                ..
            } => {
                slots.resize_with(population.len(), EvalWorkspace::new);
                parallel::evaluate_initial(evaluator, population, slots, threads)?;
                for slot in slots.iter_mut() {
                    if let Some(topo) = slot.topology_mut() {
                        topo.set_connectivity_mode(*connectivity);
                        topo.set_connectivity_cost_cap(*cost_cap);
                    }
                }
                Ok(())
            }
            EvalBackend::Rebuild { workspaces } => {
                parallel::evaluate_population_with(evaluator, population, threads, workspaces)
            }
        }
    }

    /// Sums the live topologies' always-on work counters, visiting the
    /// workspaces in index order so the total is deterministic: under the
    /// incremental backend child `i` is always evaluated in slot `i`
    /// regardless of the thread count.
    fn engine_totals(&self) -> EngineStats {
        fn sum_into(total: &mut EngineStats, workspaces: &[EvalWorkspace]) {
            for ws in workspaces {
                if let Some(stats) = ws.engine_stats() {
                    total.merge(&stats);
                }
            }
        }
        let mut total = EngineStats::default();
        match self {
            EvalBackend::Incremental { slots, spare, .. } => {
                sum_into(&mut total, slots);
                sum_into(&mut total, spare);
            }
            EvalBackend::Rebuild { workspaces } => sum_into(&mut total, workspaces),
        }
        total
    }

    /// Sums the live topologies' batch-repair phase buckets
    /// ([`ApplyPhases`]) in the same deterministic workspace order as
    /// [`engine_totals`](Self::engine_totals).
    fn phase_totals(&self) -> ApplyPhases {
        fn sum_into(total: &mut ApplyPhases, workspaces: &[EvalWorkspace]) {
            for ws in workspaces {
                if let Some(phases) = ws.apply_phases() {
                    total.merge(&phases);
                }
            }
        }
        let mut total = ApplyPhases::default();
        match self {
            EvalBackend::Incremental { slots, spare, .. } => {
                sum_into(&mut total, slots);
                sum_into(&mut total, spare);
            }
            EvalBackend::Rebuild { workspaces } => sum_into(&mut total, workspaces),
        }
        total
    }

    fn evaluate_generation(
        &mut self,
        evaluator: &Evaluator<'_>,
        parents: &Population,
        children: &mut Population,
        lineage: &[Lineage],
        threads: usize,
    ) -> Result<(), ModelError> {
        match self {
            EvalBackend::Incremental { slots, spare, .. } => {
                spare.resize_with(children.len(), EvalWorkspace::new);
                parallel::evaluate_generation(
                    evaluator, parents, slots, children, spare, lineage, threads,
                )?;
                std::mem::swap(slots, spare);
                Ok(())
            }
            EvalBackend::Rebuild { workspaces } => {
                parallel::evaluate_population_with(evaluator, children, threads, workspaces)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;
    use wmn_placement::registry::AdHocMethod;

    fn quick_config(pop: usize, gens: usize) -> GaConfig {
        GaConfig::builder()
            .population_size(pop)
            .generations(gens)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(GaConfig::builder().population_size(0).build().is_err());
        assert!(GaConfig::builder()
            .population_size(4)
            .elitism(4)
            .build()
            .is_err());
        assert!(GaConfig::builder().crossover_rate(1.5).build().is_err());
        assert!(GaConfig::builder()
            .crossover_rate(f64::NAN)
            .build()
            .is_err());
        assert!(GaConfig::builder().build().is_ok());
    }

    #[test]
    fn best_so_far_is_monotone_and_matches_trace() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let engine = GaEngine::new(&evaluator, quick_config(12, 15));
        let mut rng = rng_from_seed(2);
        let outcome = engine
            .run(&PopulationInit::AdHoc(AdHocMethod::HotSpot), &mut rng)
            .unwrap();
        assert_eq!(outcome.trace.len(), 16);
        // With elitism >= 1 the per-generation best fitness is monotone.
        let mut prev = f64::NEG_INFINITY;
        for r in outcome.trace.records() {
            assert!(
                r.best_fitness() >= prev - 1e-12,
                "elitist best dropped at generation {}",
                r.generation()
            );
            prev = r.best_fitness();
        }
        assert!(
            (outcome.best_evaluation.fitness - prev).abs() < 1e-12,
            "outcome best must equal the final trace best"
        );
        assert!(instance.validate_placement(&outcome.best_placement).is_ok());
    }

    #[test]
    fn ga_improves_over_initial_population() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(3).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let engine = GaEngine::new(&evaluator, quick_config(24, 30));
        let mut rng = rng_from_seed(4);
        let outcome = engine
            .run(&PopulationInit::UniformRandom, &mut rng)
            .unwrap();
        let initial_best = outcome.trace.records()[0].best_fitness();
        assert!(
            outcome.best_evaluation.fitness > initial_best,
            "30 generations must improve on random init: {} -> {}",
            initial_best,
            outcome.best_evaluation.fitness
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(5).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let run = |seed| {
            let engine = GaEngine::new(&evaluator, quick_config(10, 8));
            engine
                .run(
                    &PopulationInit::AdHoc(AdHocMethod::Cross),
                    &mut rng_from_seed(seed),
                )
                .unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.best_placement, b.best_placement);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(9).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let serial = GaEngine::new(&evaluator, quick_config(10, 6));
        let mut parallel_cfg = quick_config(10, 6);
        parallel_cfg.threads = 4;
        let parallel_engine = GaEngine::new(&evaluator, parallel_cfg);
        let a = serial
            .run(
                &PopulationInit::AdHoc(AdHocMethod::Near),
                &mut rng_from_seed(11),
            )
            .unwrap();
        let b = parallel_engine
            .run(
                &PopulationInit::AdHoc(AdHocMethod::Near),
                &mut rng_from_seed(11),
            )
            .unwrap();
        assert_eq!(a.trace, b.trace, "thread count must not affect results");
    }

    #[test]
    fn elites_preserve_best_across_generations() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(13).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        // No crossover, no mutation: with elitism the best individual can
        // never get worse, and the population converges to clones.
        let config = GaConfig::builder()
            .population_size(8)
            .generations(10)
            .crossover_rate(0.0)
            .mutations(vec![])
            .build()
            .unwrap();
        let engine = GaEngine::new(&evaluator, config);
        let mut rng = rng_from_seed(14);
        let outcome = engine
            .run(&PopulationInit::UniformRandom, &mut rng)
            .unwrap();
        let first = outcome.trace.records()[0].best_fitness();
        let last = outcome.trace.last().unwrap().best_fitness();
        assert!(
            (first - last).abs() < 1e-12,
            "nothing can improve or degrade"
        );
    }
}
