//! Registry of the seven ad hoc methods.
//!
//! [`AdHocMethod`] enumerates the paper's methods in table order and
//! constructs default-configured heuristics, which is what the experiment
//! harness iterates over.

use crate::col_left::ColLeftPlacement;
use crate::corners::CornersPlacement;
use crate::cross::CrossPlacement;
use crate::diag::DiagPlacement;
use crate::hotspot::HotSpotPlacement;
use crate::method::PlacementHeuristic;
use crate::near::NearPlacement;
use crate::random::RandomPlacement;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The seven ad hoc methods, in the order of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdHocMethod {
    /// Uniform random placement.
    Random,
    /// Left-column placement.
    ColLeft,
    /// Main-diagonal placement.
    Diag,
    /// Both-diagonals placement.
    Cross,
    /// Central-rectangle placement.
    Near,
    /// Four-corners placement.
    Corners,
    /// Density-driven placement.
    HotSpot,
}

impl AdHocMethod {
    /// All seven methods in table order.
    pub fn all() -> [AdHocMethod; 7] {
        [
            AdHocMethod::Random,
            AdHocMethod::ColLeft,
            AdHocMethod::Diag,
            AdHocMethod::Cross,
            AdHocMethod::Near,
            AdHocMethod::Corners,
            AdHocMethod::HotSpot,
        ]
    }

    /// The method's stable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            AdHocMethod::Random => "Random",
            AdHocMethod::ColLeft => "ColLeft",
            AdHocMethod::Diag => "Diag",
            AdHocMethod::Cross => "Cross",
            AdHocMethod::Near => "Near",
            AdHocMethod::Corners => "Corners",
            AdHocMethod::HotSpot => "HotSpot",
        }
    }

    /// Constructs a default-configured heuristic for this method.
    pub fn heuristic(&self) -> Box<dyn PlacementHeuristic> {
        match self {
            AdHocMethod::Random => Box::new(RandomPlacement::default()),
            AdHocMethod::ColLeft => Box::new(ColLeftPlacement::default()),
            AdHocMethod::Diag => Box::new(DiagPlacement::default()),
            AdHocMethod::Cross => Box::new(CrossPlacement::default()),
            AdHocMethod::Near => Box::new(NearPlacement::default()),
            AdHocMethod::Corners => Box::new(CornersPlacement::default()),
            AdHocMethod::HotSpot => Box::new(HotSpotPlacement::default()),
        }
    }
}

impl fmt::Display for AdHocMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an [`AdHocMethod`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown placement method {:?} (expected one of random, colleft, diag, cross, near, corners, hotspot)",
            self.input
        )
    }
}

impl std::error::Error for ParseMethodError {}

impl FromStr for AdHocMethod {
    type Err = ParseMethodError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" => Ok(AdHocMethod::Random),
            "colleft" | "col-left" | "col_left" => Ok(AdHocMethod::ColLeft),
            "diag" | "diagonal" => Ok(AdHocMethod::Diag),
            "cross" => Ok(AdHocMethod::Cross),
            "near" => Ok(AdHocMethod::Near),
            "corners" => Ok(AdHocMethod::Corners),
            "hotspot" | "hot-spot" | "hot_spot" => Ok(AdHocMethod::HotSpot),
            _ => Err(ParseMethodError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    #[test]
    fn all_lists_seven_in_table_order() {
        let names: Vec<&str> = AdHocMethod::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["Random", "ColLeft", "Diag", "Cross", "Near", "Corners", "HotSpot"]
        );
    }

    #[test]
    fn every_method_places_validly_on_every_paper_instance() {
        for spec in [
            InstanceSpec::paper_uniform().unwrap(),
            InstanceSpec::paper_normal().unwrap(),
            InstanceSpec::paper_exponential().unwrap(),
            InstanceSpec::paper_weibull().unwrap(),
        ] {
            let inst = spec.generate(42).unwrap();
            for method in AdHocMethod::all() {
                let h = method.heuristic();
                let p = h.place(&inst, &mut rng_from_seed(7));
                assert!(
                    inst.validate_placement(&p).is_ok(),
                    "{method} produced an invalid placement"
                );
                assert_eq!(h.name(), method.name());
            }
        }
    }

    #[test]
    fn parse_roundtrips() {
        for m in AdHocMethod::all() {
            assert_eq!(m.name().parse::<AdHocMethod>().unwrap(), m);
            assert_eq!(m.name().to_lowercase().parse::<AdHocMethod>().unwrap(), m);
        }
        assert!("frobnicate".parse::<AdHocMethod>().is_err());
        assert_eq!(
            "col-left".parse::<AdHocMethod>().unwrap(),
            AdHocMethod::ColLeft
        );
        assert_eq!(
            "hot_spot".parse::<AdHocMethod>().unwrap(),
            AdHocMethod::HotSpot
        );
    }

    #[test]
    fn parse_error_is_descriptive() {
        let err = "nope".parse::<AdHocMethod>().unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn methods_differ_in_output() {
        let inst = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let placements: Vec<_> = AdHocMethod::all()
            .iter()
            .map(|m| m.heuristic().place(&inst, &mut rng_from_seed(3)))
            .collect();
        for i in 0..placements.len() {
            for j in (i + 1)..placements.len() {
                assert_ne!(
                    placements[i],
                    placements[j],
                    "{} and {} coincide",
                    AdHocMethod::all()[i],
                    AdHocMethod::all()[j]
                );
            }
        }
    }
}
