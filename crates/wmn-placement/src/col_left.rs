//! **ColLeft** placement (paper §3, method 2).
//!
//! "Places almost all mesh routers at the left side of the grid area. …
//! usually applicable when the number of mesh routers is (proportionally)
//! smaller than grid area height, for instance, one third of the height."
//!
//! Routers are stacked in vertical columns starting at the left edge: the
//! first column holds as many evenly spaced routers as the height
//! comfortably accommodates, then the next column, and so on — so the mass
//! stays on the left even when the router count exceeds the paper's
//! one-third-of-height guidance (in which case
//! [`check_applicable`](crate::method::PlacementHeuristic::check_applicable)
//! reports the violation but placement still succeeds).

use crate::method::{Inapplicability, PatternConfig, PlacementHeuristic};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Configuration for [`ColLeftPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColLeftConfig {
    /// Horizontal spacing between successive columns, as a fraction of the
    /// area width.
    pub column_spacing_fraction: f64,
    /// Inset of the first column from the left edge, as a fraction of the
    /// area width.
    pub left_inset_fraction: f64,
    /// Routers per column, as a fraction of the area height divided by the
    /// routers' nominal diameter (controls vertical packing).
    pub pattern: PatternConfig,
}

impl Default for ColLeftConfig {
    fn default() -> Self {
        ColLeftConfig {
            column_spacing_fraction: 0.05,
            left_inset_fraction: 0.02,
            pattern: PatternConfig::paper_default(),
        }
    }
}

/// Left-column placement.
///
/// # Examples
///
/// ```
/// use wmn_placement::col_left::ColLeftPlacement;
/// use wmn_placement::method::PlacementHeuristic;
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(3);
/// let placement = ColLeftPlacement::default().place(&instance, &mut rng);
/// instance.validate_placement(&placement)?;
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ColLeftPlacement {
    config: ColLeftConfig,
}

impl ColLeftPlacement {
    /// Creates the method with explicit configuration.
    pub fn new(config: ColLeftConfig) -> Self {
        ColLeftPlacement { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ColLeftConfig {
        &self.config
    }

    /// Routers per column for `instance`: one router per "nominal diameter"
    /// of vertical space, so chains along a column can actually link.
    fn per_column(&self, instance: &ProblemInstance) -> usize {
        let h = instance.area().height();
        let diameter = 2.0 * instance.routers()[0].profile().nominal_radius();
        ((h / diameter).floor() as usize).max(1)
    }
}

impl PlacementHeuristic for ColLeftPlacement {
    fn name(&self) -> &'static str {
        "ColLeft"
    }

    fn check_applicable(&self, instance: &ProblemInstance) -> Result<(), Inapplicability> {
        let third = instance.area().height() / 3.0;
        if (instance.router_count() as f64) > third {
            return Err(Inapplicability {
                reason: format!(
                    "ColLeft prefers router counts below a third of the area height ({} > {:.0})",
                    instance.router_count(),
                    third
                ),
            });
        }
        Ok(())
    }

    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement {
        let area = instance.area();
        let n = instance.router_count();
        let per_column = self.per_column(instance);
        let x0 = self.config.left_inset_fraction.max(0.0) * area.width();
        let dx = self.config.column_spacing_fraction.max(0.001) * area.width();
        let mut pattern = Vec::with_capacity(n);
        for i in 0..n {
            let col = i / per_column;
            let row = i % per_column;
            let rows_in_col = per_column.min(n - col * per_column);
            let y = if rows_in_col <= 1 {
                area.height() / 2.0
            } else {
                area.height() * (row as f64 + 0.5) / rows_in_col as f64
            };
            pattern.push(Point::new(x0 + col as f64 * dx, y));
        }
        self.config.pattern.apply(instance, pattern, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn paper_instance() -> ProblemInstance {
        InstanceSpec::paper_uniform().unwrap().generate(1).unwrap()
    }

    #[test]
    fn mass_is_on_the_left() {
        let inst = paper_instance();
        let p = ColLeftPlacement::default().place(&inst, &mut rng_from_seed(7));
        assert!(inst.validate_placement(&p).is_ok());
        let left_half = p.as_slice().iter().filter(|q| q.x < 64.0).count();
        assert!(
            left_half >= 55,
            "ColLeft should keep most of 64 routers on the left, got {left_half}"
        );
    }

    #[test]
    fn columns_fill_top_to_bottom() {
        let inst = paper_instance();
        let exact = ColLeftPlacement::new(ColLeftConfig {
            pattern: PatternConfig::exact(),
            ..ColLeftConfig::default()
        });
        let p = exact.place(&inst, &mut rng_from_seed(1));
        // First column: 12 routers (128 height / 10 diameter), evenly spaced.
        let first_col_x = p.as_slice()[0].x;
        let in_first: Vec<f64> = p
            .as_slice()
            .iter()
            .filter(|q| (q.x - first_col_x).abs() < 1e-9)
            .map(|q| q.y)
            .collect();
        assert!(in_first.len() >= 2);
        let ys: Vec<f64> = {
            let mut v = in_first.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        // Evenly spaced: consecutive gaps equal.
        let gap = ys[1] - ys[0];
        for w in ys.windows(2) {
            assert!((w[1] - w[0] - gap).abs() < 1e-6);
        }
    }

    #[test]
    fn applicability_warns_on_paper_instance() {
        // 64 routers > 128/3: the paper's own instance violates the stated
        // guidance; the method must still place.
        let inst = paper_instance();
        let m = ColLeftPlacement::default();
        assert!(m.check_applicable(&inst).is_err());
        assert!(inst
            .validate_placement(&m.place(&inst, &mut rng_from_seed(2)))
            .is_ok());
    }

    #[test]
    fn applicable_for_few_routers() {
        let spec = InstanceSpec::new(
            wmn_model::Area::square(128.0).unwrap(),
            16,
            32,
            wmn_model::ClientDistribution::Uniform,
            wmn_model::RadioProfile::paper_default(),
        )
        .unwrap();
        let inst = spec.generate(1).unwrap();
        assert!(ColLeftPlacement::default().check_applicable(&inst).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = paper_instance();
        let m = ColLeftPlacement::default();
        assert_eq!(
            m.place(&inst, &mut rng_from_seed(5)),
            m.place(&inst, &mut rng_from_seed(5))
        );
    }
}
