//! The placement-heuristic trait and shared pattern machinery.
//!
//! Paper §3: *"in all considered methods, there is a pattern in placement of
//! mesh router nodes, meaning that **most** of the node placements follow
//! the pattern"*. Every heuristic here produces its pattern positions and
//! then passes them through [`PatternConfig::apply`], which (a) re-draws a
//! small fraction of routers uniformly at random (pattern adherence) and
//! (b) adds Gaussian jitter around the pattern points, clamped into the
//! area.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;
use wmn_model::distribution::standard_normal;
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Why a heuristic considers an instance outside its comfort zone.
///
/// Applicability is **advisory** (the paper still evaluates every method on
/// every instance): `place` always returns a valid placement, but callers
/// may inspect [`PlacementHeuristic::check_applicable`] to warn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inapplicability {
    /// Human-readable reason, e.g. "area is not near-square".
    pub reason: String,
}

impl fmt::Display for Inapplicability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for Inapplicability {}

/// An ad hoc placement method: maps an instance to a router placement.
///
/// Implementations must return a placement that validates against the
/// instance (correct length, all positions in-area) for **every** input,
/// even ones they report as inapplicable.
pub trait PlacementHeuristic: fmt::Debug {
    /// Short stable name, e.g. `"HotSpot"` (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Advisory applicability check (see [`Inapplicability`]).
    ///
    /// # Errors
    ///
    /// Returns the reason when the instance violates the method's stated
    /// preconditions (e.g. Diag on a far-from-square area).
    fn check_applicable(&self, _instance: &ProblemInstance) -> Result<(), Inapplicability> {
        Ok(())
    }

    /// Produces a placement for `instance`.
    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement;
}

/// Pattern-adherence and jitter shared by all methods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternConfig {
    /// Fraction of routers that follow the pattern (the rest are drawn
    /// uniformly at random). Clamped to `[0, 1]`.
    pub adherence: f64,
    /// Gaussian jitter around pattern points, as a fraction of the area's
    /// smaller dimension. Clamped to `>= 0`.
    pub jitter_fraction: f64,
}

impl PatternConfig {
    /// Paper-faithful defaults: 90% adherence, 1.5% jitter.
    pub fn paper_default() -> Self {
        PatternConfig {
            adherence: 0.9,
            jitter_fraction: 0.015,
        }
    }

    /// No randomness: every router exactly on its pattern point. Useful in
    /// tests.
    pub fn exact() -> Self {
        PatternConfig {
            adherence: 1.0,
            jitter_fraction: 0.0,
        }
    }

    /// Applies adherence and jitter to raw pattern positions, producing the
    /// final (validated, in-area) placement.
    pub fn apply(
        &self,
        instance: &ProblemInstance,
        pattern: Vec<Point>,
        rng: &mut dyn RngCore,
    ) -> Placement {
        let area = instance.area();
        let adherence = self.adherence.clamp(0.0, 1.0);
        let sigma = self.jitter_fraction.max(0.0) * area.width().min(area.height());
        let mut placement = Placement::with_capacity(pattern.len());
        for p in pattern {
            let pos = if rng.gen::<f64>() >= adherence {
                // Pattern breaker: uniform anywhere in the area.
                Point::new(
                    rng.gen_range(0.0..=area.width()),
                    rng.gen_range(0.0..=area.height()),
                )
            } else if sigma > 0.0 {
                area.clamp_point(Point::new(
                    p.x + sigma * standard_normal(rng),
                    p.y + sigma * standard_normal(rng),
                ))
            } else {
                area.clamp_point(p)
            };
            placement.push(pos);
        }
        placement
    }
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig::paper_default()
    }
}

/// Spreads `n` points evenly along the segment from `a` to `b` (inclusive
/// endpoints for `n >= 2`; the midpoint for `n == 1`).
pub(crate) fn points_along_segment(a: Point, b: Point, n: usize) -> Vec<Point> {
    match n {
        0 => Vec::new(),
        1 => vec![a.midpoint(b)],
        _ => (0..n)
            .map(|i| a.lerp(b, i as f64 / (n - 1) as f64))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn paper_instance() -> ProblemInstance {
        InstanceSpec::paper_uniform().unwrap().generate(1).unwrap()
    }

    #[test]
    fn exact_config_preserves_pattern() {
        let inst = paper_instance();
        let pattern: Vec<Point> = (0..64).map(|i| Point::new(i as f64, i as f64)).collect();
        let mut rng = rng_from_seed(1);
        let placed = PatternConfig::exact().apply(&inst, pattern.clone(), &mut rng);
        assert_eq!(placed.as_slice(), pattern.as_slice());
    }

    #[test]
    fn apply_clamps_out_of_area_pattern_points() {
        let inst = paper_instance();
        let pattern = vec![Point::new(-10.0, 500.0)];
        let mut rng = rng_from_seed(2);
        let placed = PatternConfig::exact().apply(&inst, pattern, &mut rng);
        assert!(inst.area().contains(placed.as_slice()[0]));
    }

    #[test]
    fn default_config_mostly_follows_pattern() {
        let inst = paper_instance();
        let center = inst.area().center();
        let pattern = vec![center; 500];
        let mut rng = rng_from_seed(3);
        let placed = PatternConfig::paper_default().apply(&inst, pattern, &mut rng);
        // With 90% adherence and small jitter, most points stay near center.
        let near = placed
            .as_slice()
            .iter()
            .filter(|p| p.distance(center) < 15.0)
            .count();
        assert!(near > 400, "only {near}/500 points near the pattern");
        // And some breakers exist (probability of zero breakers ~ 1e-23).
        assert!(near < 500, "adherence must leave room for pattern breakers");
    }

    #[test]
    fn zero_adherence_is_uniform_random() {
        let inst = paper_instance();
        let corner = Point::origin();
        let pattern = vec![corner; 400];
        let cfg = PatternConfig {
            adherence: 0.0,
            jitter_fraction: 0.0,
        };
        let mut rng = rng_from_seed(4);
        let placed = cfg.apply(&inst, pattern, &mut rng);
        let far = placed
            .as_slice()
            .iter()
            .filter(|p| p.distance(corner) > 64.0)
            .count();
        assert!(far > 100, "uniform placement must spread out, {far} far");
    }

    #[test]
    fn apply_always_validates() {
        let inst = paper_instance();
        let pattern: Vec<Point> = (0..64).map(|_| Point::new(1e9, -1e9)).collect();
        let mut rng = rng_from_seed(5);
        let placed = PatternConfig::paper_default().apply(&inst, pattern, &mut rng);
        assert!(inst.validate_placement(&placed).is_ok());
    }

    #[test]
    fn segment_points_include_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 10.0);
        let pts = points_along_segment(a, b, 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], a);
        assert_eq!(pts[4], b);
        assert_eq!(pts[2], Point::new(5.0, 5.0));
    }

    #[test]
    fn segment_degenerate_counts() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert!(points_along_segment(a, b, 0).is_empty());
        assert_eq!(points_along_segment(a, b, 1), vec![Point::new(5.0, 0.0)]);
    }
}
