//! **Cross** placement (paper §3, method 4).
//!
//! "Tends to place mesh routers along both diagonals of the grid area.
//! Similar conditions as the ones for Diagonal placement are required."
//!
//! Routers alternate between the main and anti diagonals so both arms fill
//! evenly regardless of the router count's parity.

use crate::method::{points_along_segment, Inapplicability, PatternConfig, PlacementHeuristic};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Configuration for [`CrossPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossConfig {
    /// Maximum relative width/height imbalance for applicability (the paper
    /// uses 10%).
    pub aspect_tolerance: f64,
    /// Inset of the diagonal endpoints from the corners, as a fraction of
    /// the diagonal length.
    pub end_inset_fraction: f64,
    /// Shared pattern adherence/jitter.
    pub pattern: PatternConfig,
}

impl Default for CrossConfig {
    fn default() -> Self {
        CrossConfig {
            aspect_tolerance: 0.10,
            end_inset_fraction: 0.02,
            pattern: PatternConfig::paper_default(),
        }
    }
}

/// Both-diagonals ("X") placement.
///
/// # Examples
///
/// ```
/// use wmn_placement::cross::CrossPlacement;
/// use wmn_placement::method::PlacementHeuristic;
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(5);
/// let placement = CrossPlacement::default().place(&instance, &mut rng);
/// instance.validate_placement(&placement)?;
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CrossPlacement {
    config: CrossConfig,
}

impl CrossPlacement {
    /// Creates the method with explicit configuration.
    pub fn new(config: CrossConfig) -> Self {
        CrossPlacement { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CrossConfig {
        &self.config
    }
}

impl PlacementHeuristic for CrossPlacement {
    fn name(&self) -> &'static str {
        "Cross"
    }

    fn check_applicable(&self, instance: &ProblemInstance) -> Result<(), Inapplicability> {
        let area = instance.area();
        if !area.is_near_square(self.config.aspect_tolerance) {
            return Err(Inapplicability {
                reason: format!(
                    "Cross needs a near-square area (imbalance {:.1}% > {:.1}%)",
                    100.0 * area.aspect_imbalance(),
                    100.0 * self.config.aspect_tolerance
                ),
            });
        }
        Ok(())
    }

    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement {
        let area = instance.area();
        let n = instance.router_count();
        let t = self.config.end_inset_fraction.clamp(0.0, 0.49);
        let main_count = n - n / 2; // main diagonal gets the extra router on odd n
        let anti_count = n / 2;
        let main = points_along_segment(
            Point::new(area.width() * t, area.height() * t),
            Point::new(area.width() * (1.0 - t), area.height() * (1.0 - t)),
            main_count,
        );
        let anti = points_along_segment(
            Point::new(area.width() * t, area.height() * (1.0 - t)),
            Point::new(area.width() * (1.0 - t), area.height() * t),
            anti_count,
        );
        // Interleave so router power (which correlates with id order in no
        // way, but keeps both arms filled for any prefix) alternates arms.
        let mut pattern = Vec::with_capacity(n);
        let (mut mi, mut ai) = (main.into_iter(), anti.into_iter());
        for i in 0..n {
            let next = if i % 2 == 0 {
                mi.next().or_else(|| ai.next())
            } else {
                ai.next().or_else(|| mi.next())
            };
            pattern.push(next.expect("counts add up to n"));
        }
        self.config.pattern.apply(instance, pattern, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn paper_instance() -> ProblemInstance {
        InstanceSpec::paper_uniform().unwrap().generate(1).unwrap()
    }

    fn diagonal_distance(q: &Point) -> f64 {
        // Min distance to either diagonal of the 128x128 square.
        let main = (q.y - q.x).abs() / 2f64.sqrt();
        let anti = (q.y + q.x - 128.0).abs() / 2f64.sqrt();
        main.min(anti)
    }

    #[test]
    fn routers_hug_one_of_the_diagonals() {
        let inst = paper_instance();
        let p = CrossPlacement::default().place(&inst, &mut rng_from_seed(8));
        assert!(inst.validate_placement(&p).is_ok());
        let near = p
            .as_slice()
            .iter()
            .filter(|q| diagonal_distance(q) < 8.0)
            .count();
        assert!(near >= 55, "most routers near a diagonal, got {near}/64");
    }

    #[test]
    fn both_arms_are_populated() {
        let inst = paper_instance();
        let m = CrossPlacement::new(CrossConfig {
            pattern: PatternConfig::exact(),
            ..CrossConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        let on_main = p
            .as_slice()
            .iter()
            .filter(|q| (q.y - q.x).abs() < 1e-6)
            .count();
        let on_anti = p
            .as_slice()
            .iter()
            .filter(|q| (q.y + q.x - 128.0).abs() < 1e-6)
            .count();
        assert_eq!(on_main, 32);
        assert_eq!(on_anti, 32);
    }

    #[test]
    fn odd_router_count_splits_evenly() {
        // n = 9: main diagonal gets 5 points (including the center, which
        // lies on both diagonals), anti diagonal gets 4 (center-free).
        let spec = InstanceSpec::new(
            wmn_model::Area::square(100.0).unwrap(),
            9,
            10,
            wmn_model::ClientDistribution::Uniform,
            wmn_model::RadioProfile::paper_default(),
        )
        .unwrap();
        let inst = spec.generate(1).unwrap();
        let m = CrossPlacement::new(CrossConfig {
            pattern: PatternConfig::exact(),
            end_inset_fraction: 0.0,
            ..CrossConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        assert_eq!(p.len(), 9);
        let on_main = p
            .as_slice()
            .iter()
            .filter(|q| (q.y - q.x).abs() < 1e-6)
            .count();
        let on_anti = p
            .as_slice()
            .iter()
            .filter(|q| (q.y + q.x - 100.0).abs() < 1e-6)
            .count();
        assert_eq!(on_main, 5, "main diagonal takes the extra router");
        assert_eq!(on_anti, 5, "anti diagonal holds 4 plus the shared center");
    }

    #[test]
    fn aspect_check_mirrors_diag() {
        let spec = InstanceSpec::new(
            wmn_model::Area::new(300.0, 100.0).unwrap(),
            8,
            10,
            wmn_model::ClientDistribution::Uniform,
            wmn_model::RadioProfile::paper_default(),
        )
        .unwrap();
        let inst = spec.generate(1).unwrap();
        assert!(CrossPlacement::default().check_applicable(&inst).is_err());
        assert!(CrossPlacement::default()
            .check_applicable(&paper_instance())
            .is_ok());
    }
}
