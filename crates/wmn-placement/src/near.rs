//! **Near** placement (paper §3, method 5).
//!
//! "Mesh routers are concentrated in the central zone of the grid area. To
//! apply the method, minimum and maximum (user specified) values are
//! considered to trace a rectangle in the central part of the grid area;
//! routers are distributed in the rectangle cells."
//!
//! The central rectangle spans `[min_fraction, max_fraction]` of each
//! dimension; routers are laid out on the cells of a near-square grid
//! inside it (one router per cell, row-major), which is the "rectangle
//! cells" reading of the paper.

use crate::method::{PatternConfig, PlacementHeuristic};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Configuration for [`NearPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NearConfig {
    /// Lower corner of the central rectangle, as a fraction of each
    /// dimension (paper's user-specified minimum).
    pub min_fraction: f64,
    /// Upper corner of the central rectangle, as a fraction of each
    /// dimension (paper's user-specified maximum).
    pub max_fraction: f64,
    /// Shared pattern adherence/jitter.
    pub pattern: PatternConfig,
}

impl Default for NearConfig {
    fn default() -> Self {
        NearConfig {
            min_fraction: 0.25,
            max_fraction: 0.75,
            pattern: PatternConfig::paper_default(),
        }
    }
}

/// Central-rectangle placement.
///
/// # Examples
///
/// ```
/// use wmn_placement::method::PlacementHeuristic;
/// use wmn_placement::near::NearPlacement;
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(6);
/// let placement = NearPlacement::default().place(&instance, &mut rng);
/// instance.validate_placement(&placement)?;
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NearPlacement {
    config: NearConfig,
}

impl NearPlacement {
    /// Creates the method with explicit configuration.
    ///
    /// Fractions are normalized at placement time: they are clamped to
    /// `[0, 1]` and swapped if inverted.
    pub fn new(config: NearConfig) -> Self {
        NearPlacement { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &NearConfig {
        &self.config
    }

    fn rectangle(&self, instance: &ProblemInstance) -> (Point, Point) {
        let area = instance.area();
        let mut lo = self.config.min_fraction.clamp(0.0, 1.0);
        let mut hi = self.config.max_fraction.clamp(0.0, 1.0);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        (
            Point::new(area.width() * lo, area.height() * lo),
            Point::new(area.width() * hi, area.height() * hi),
        )
    }
}

impl PlacementHeuristic for NearPlacement {
    fn name(&self) -> &'static str {
        "Near"
    }

    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement {
        let n = instance.router_count();
        let (lo, hi) = self.rectangle(instance);
        let (w, h) = (hi.x - lo.x, hi.y - lo.y);
        // Near-square cell grid with at least n cells.
        let cols = (n as f64).sqrt().ceil().max(1.0) as usize;
        let rows = n.div_ceil(cols);
        let mut pattern = Vec::with_capacity(n);
        for i in 0..n {
            let (cx, cy) = (i % cols, i / cols);
            pattern.push(Point::new(
                lo.x + w * (cx as f64 + 0.5) / cols as f64,
                lo.y + h * (cy as f64 + 0.5) / rows as f64,
            ));
        }
        self.config.pattern.apply(instance, pattern, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn paper_instance() -> ProblemInstance {
        InstanceSpec::paper_uniform().unwrap().generate(1).unwrap()
    }

    #[test]
    fn routers_sit_in_the_central_rectangle() {
        let inst = paper_instance();
        let p = NearPlacement::default().place(&inst, &mut rng_from_seed(5));
        assert!(inst.validate_placement(&p).is_ok());
        let central = p
            .as_slice()
            .iter()
            .filter(|q| q.x >= 28.0 && q.x <= 100.0 && q.y >= 28.0 && q.y <= 100.0)
            .count();
        assert!(central >= 55, "most routers central, got {central}/64");
    }

    #[test]
    fn exact_grid_fills_rows_and_columns() {
        let inst = paper_instance();
        let m = NearPlacement::new(NearConfig {
            pattern: PatternConfig::exact(),
            ..NearConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        // 64 routers -> 8x8 grid in [32, 96]^2: distinct xs = 8, distinct ys = 8.
        let mut xs: Vec<i64> = p.as_slice().iter().map(|q| (q.x * 1000.0) as i64).collect();
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs.len(), 8);
        let inside = p
            .as_slice()
            .iter()
            .all(|q| q.x > 32.0 && q.x < 96.0 && q.y > 32.0 && q.y < 96.0);
        assert!(inside);
    }

    #[test]
    fn inverted_fractions_are_normalized() {
        let inst = paper_instance();
        let m = NearPlacement::new(NearConfig {
            min_fraction: 0.75,
            max_fraction: 0.25,
            pattern: PatternConfig::exact(),
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        assert!(inst.validate_placement(&p).is_ok());
        assert!(p.as_slice().iter().all(|q| q.x >= 32.0 && q.x <= 96.0));
    }

    #[test]
    fn degenerate_rectangle_collapses_to_point_grid() {
        let inst = paper_instance();
        let m = NearPlacement::new(NearConfig {
            min_fraction: 0.5,
            max_fraction: 0.5,
            pattern: PatternConfig::exact(),
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        assert!(p
            .as_slice()
            .iter()
            .all(|q| (q.x - 64.0).abs() < 1e-9 && (q.y - 64.0).abs() < 1e-9));
    }

    #[test]
    fn always_applicable() {
        assert!(NearPlacement::default()
            .check_applicable(&paper_instance())
            .is_ok());
    }
}
