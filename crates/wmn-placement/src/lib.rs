//! The seven ad hoc placement heuristics for WMN mesh routers.
//!
//! Paper §3 evaluates seven simple placement topologies, useful both as
//! fast standalone methods and as initializers for evolutionary algorithms:
//!
//! | Method | Module | Pattern |
//! |---|---|---|
//! | Random  | [`random`]  | uniform over the area |
//! | ColLeft | [`col_left`] | stacked columns at the left edge |
//! | Diag    | [`diag`]    | the main diagonal |
//! | Cross   | [`cross`]   | both diagonals |
//! | Near    | [`near`]    | a central rectangle |
//! | Corners | [`corners`] | the four corner squares |
//! | HotSpot | [`hotspot`] | strongest routers into densest client zones |
//!
//! All methods implement [`PlacementHeuristic`] and honor the paper's
//! "most placements follow the pattern" rule through a shared
//! [`PatternConfig`] (adherence + jitter). [`AdHocMethod`] is the registry
//! the experiment harness iterates.
//!
//! # Quick start
//!
//! ```
//! use wmn_placement::prelude::*;
//! use wmn_model::prelude::*;
//!
//! let instance = InstanceSpec::paper_normal()?.generate(5)?;
//! let mut rng = rng_from_seed(0);
//! for method in AdHocMethod::all() {
//!     let placement = method.heuristic().place(&instance, &mut rng);
//!     instance.validate_placement(&placement)?;
//! }
//! # Ok::<(), wmn_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod col_left;
pub mod corners;
pub mod cross;
pub mod diag;
pub mod hotspot;
pub mod method;
pub mod near;
pub mod random;
pub mod registry;

pub use method::{Inapplicability, PatternConfig, PlacementHeuristic};
pub use registry::{AdHocMethod, ParseMethodError};

/// Convenient glob import of the methods and their configs.
pub mod prelude {
    pub use crate::col_left::{ColLeftConfig, ColLeftPlacement};
    pub use crate::corners::{CornersConfig, CornersPlacement};
    pub use crate::cross::{CrossConfig, CrossPlacement};
    pub use crate::diag::{DiagConfig, DiagPlacement};
    pub use crate::hotspot::{HotSpotConfig, HotSpotPlacement};
    pub use crate::method::{Inapplicability, PatternConfig, PlacementHeuristic};
    pub use crate::near::{NearConfig, NearPlacement};
    pub use crate::random::RandomPlacement;
    pub use crate::registry::AdHocMethod;
}
