//! **Diag** placement (paper §3, method 3).
//!
//! "Mesh routers are concentrated along the (main) diagonal of the grid
//! area. … appropriate when the grid area fulfils some conditions such as
//! the height and width must have similar values (we considered the case of
//! 10% difference in their values)."

use crate::method::{points_along_segment, Inapplicability, PatternConfig, PlacementHeuristic};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Configuration for [`DiagPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiagConfig {
    /// Maximum relative width/height imbalance for applicability (the paper
    /// uses 10%).
    pub aspect_tolerance: f64,
    /// Inset of the diagonal endpoints from the corners, as a fraction of
    /// the diagonal length (keeps end routers away from the exact corner).
    pub end_inset_fraction: f64,
    /// Shared pattern adherence/jitter.
    pub pattern: PatternConfig,
}

impl Default for DiagConfig {
    fn default() -> Self {
        DiagConfig {
            aspect_tolerance: 0.10,
            end_inset_fraction: 0.02,
            pattern: PatternConfig::paper_default(),
        }
    }
}

/// Main-diagonal placement.
///
/// # Examples
///
/// ```
/// use wmn_placement::diag::DiagPlacement;
/// use wmn_placement::method::PlacementHeuristic;
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(4);
/// let placement = DiagPlacement::default().place(&instance, &mut rng);
/// instance.validate_placement(&placement)?;
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiagPlacement {
    config: DiagConfig,
}

impl DiagPlacement {
    /// Creates the method with explicit configuration.
    pub fn new(config: DiagConfig) -> Self {
        DiagPlacement { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DiagConfig {
        &self.config
    }
}

impl PlacementHeuristic for DiagPlacement {
    fn name(&self) -> &'static str {
        "Diag"
    }

    fn check_applicable(&self, instance: &ProblemInstance) -> Result<(), Inapplicability> {
        let area = instance.area();
        if !area.is_near_square(self.config.aspect_tolerance) {
            return Err(Inapplicability {
                reason: format!(
                    "Diag needs a near-square area (imbalance {:.1}% > {:.1}%)",
                    100.0 * area.aspect_imbalance(),
                    100.0 * self.config.aspect_tolerance
                ),
            });
        }
        Ok(())
    }

    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement {
        let area = instance.area();
        let t = self.config.end_inset_fraction.clamp(0.0, 0.49);
        let a = Point::new(area.width() * t, area.height() * t);
        let b = Point::new(area.width() * (1.0 - t), area.height() * (1.0 - t));
        let pattern = points_along_segment(a, b, instance.router_count());
        self.config.pattern.apply(instance, pattern, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;
    use wmn_model::{Area, ClientDistribution, RadioProfile};

    fn paper_instance() -> ProblemInstance {
        InstanceSpec::paper_uniform().unwrap().generate(1).unwrap()
    }

    #[test]
    fn routers_hug_the_main_diagonal() {
        let inst = paper_instance();
        let p = DiagPlacement::default().place(&inst, &mut rng_from_seed(3));
        assert!(inst.validate_placement(&p).is_ok());
        // Distance from y = x line (square area): |y - x| / sqrt(2).
        let near = p
            .as_slice()
            .iter()
            .filter(|q| (q.y - q.x).abs() / 2f64.sqrt() < 8.0)
            .count();
        assert!(near >= 55, "most routers near diagonal, got {near}/64");
    }

    #[test]
    fn exact_pattern_spans_corner_to_corner() {
        let inst = paper_instance();
        let m = DiagPlacement::new(DiagConfig {
            pattern: PatternConfig::exact(),
            end_inset_fraction: 0.0,
            ..DiagConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        let s = p.as_slice();
        assert_eq!(s[0], Point::new(0.0, 0.0));
        assert_eq!(s[63], Point::new(128.0, 128.0));
        // Monotone along the diagonal.
        for w in s.windows(2) {
            assert!(w[1].x > w[0].x && w[1].y > w[0].y);
        }
    }

    #[test]
    fn square_area_is_applicable() {
        assert!(DiagPlacement::default()
            .check_applicable(&paper_instance())
            .is_ok());
    }

    #[test]
    fn elongated_area_is_inapplicable_but_places() {
        let spec = InstanceSpec::new(
            Area::new(200.0, 100.0).unwrap(),
            16,
            32,
            ClientDistribution::Uniform,
            RadioProfile::paper_default(),
        )
        .unwrap();
        let inst = spec.generate(1).unwrap();
        let m = DiagPlacement::default();
        assert!(m.check_applicable(&inst).is_err());
        let p = m.place(&inst, &mut rng_from_seed(2));
        assert!(inst.validate_placement(&p).is_ok());
    }

    #[test]
    fn within_tolerance_area_is_applicable() {
        let spec = InstanceSpec::new(
            Area::new(100.0, 92.0).unwrap(),
            8,
            16,
            ClientDistribution::Uniform,
            RadioProfile::paper_default(),
        )
        .unwrap();
        let inst = spec.generate(1).unwrap();
        assert!(DiagPlacement::default().check_applicable(&inst).is_ok());
    }
}
