//! **HotSpot** placement (paper §3, method 7).
//!
//! "Starts by placing the most powerful mesh router in the most dense zone
//! (in terms of client nodes) of the grid area; next, the second most
//! powerful mesh router is placed in the second most dense zone, and so on
//! until all routers are placed. … this method has a greater computational
//! cost as compared to other methods due to the computation of denseness."
//!
//! Density is computed with a [`DensityMap`] (cell grid + summed-area
//! table); zones are pairwise-disjoint windows ranked by client count.
//! When there are more routers than rankable zones, assignment cycles back
//! through the zones.

use crate::method::{PatternConfig, PlacementHeuristic};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use wmn_graph::density::DensityMap;
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Configuration for [`HotSpotPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotSpotConfig {
    /// Density grid resolution: the area is split into `cells × cells`
    /// cells.
    pub cells: usize,
    /// Zone size in cells (zones are `window_cells × window_cells`).
    pub window_cells: usize,
    /// Minimum clients for a zone to attract routers. Values above 1 keep
    /// routers off single-client outlier zones, concentrating the
    /// placement on the contiguous client mass.
    pub min_zone_clients: u64,
    /// Shared pattern adherence/jitter.
    pub pattern: PatternConfig,
}

impl Default for HotSpotConfig {
    fn default() -> Self {
        // 16x16 cells with single-cell zones (8x8 length units on the
        // paper's area). Cell-granular zones tile the client mass
        // contiguously, so consecutive routers land within a cell pitch of
        // each other — the latent connectivity that makes HotSpot the
        // strongest GA initializer in the paper's Figures 1–3.
        HotSpotConfig {
            cells: 16,
            window_cells: 1,
            min_zone_clients: 2,
            pattern: PatternConfig::paper_default(),
        }
    }
}

/// Density-driven placement: strongest routers into densest client zones.
///
/// # Examples
///
/// ```
/// use wmn_placement::hotspot::HotSpotPlacement;
/// use wmn_placement::method::PlacementHeuristic;
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(8);
/// let placement = HotSpotPlacement::default().place(&instance, &mut rng);
/// instance.validate_placement(&placement)?;
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HotSpotPlacement {
    config: HotSpotConfig,
}

impl HotSpotPlacement {
    /// Creates the method with explicit configuration.
    pub fn new(config: HotSpotConfig) -> Self {
        HotSpotPlacement { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HotSpotConfig {
        &self.config
    }

    /// The density map this method ranks zones on (exposed for diagnostics
    /// and the swap movement, which uses the same denseness notion).
    pub fn density_map(&self, instance: &ProblemInstance) -> DensityMap {
        let cells = self.config.cells.max(1);
        DensityMap::from_points(&instance.area(), &instance.client_positions(), cells, cells)
    }
}

impl PlacementHeuristic for HotSpotPlacement {
    fn name(&self) -> &'static str {
        "HotSpot"
    }

    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement {
        let n = instance.router_count();
        let map = self.density_map(instance);
        let mut zones =
            map.ranked_disjoint_windows(self.config.window_cells, self.config.window_cells, n);
        // Zones below the client threshold attract no router: cycling
        // through the qualifying zones keeps the method concentrated on the
        // contiguous client mass (zones are ranked by count, so qualifying
        // zones form a prefix).
        let threshold = self.config.min_zone_clients.max(1);
        let qualifying = zones
            .iter()
            .take_while(|z| map.window_count(z) >= threshold)
            .count();
        if qualifying > 0 {
            zones.truncate(qualifying);
        } else {
            // No zone reaches the threshold (sparse instances): fall back
            // to any populated zone.
            let populated = zones.iter().take_while(|z| map.window_count(z) > 0).count();
            if populated > 0 {
                zones.truncate(populated);
            }
        }
        debug_assert!(!zones.is_empty(), "grid always hosts at least one zone");

        // Strongest router -> densest zone, second strongest -> second
        // densest, ... cycling when zones are exhausted.
        let by_power = instance.routers_by_power_desc();
        let mut pattern = vec![Point::origin(); n];
        for (rank, router_id) in by_power.into_iter().enumerate() {
            let zone = &zones[rank % zones.len()];
            pattern[router_id.index()] = map.window_rect(zone).center();
        }
        self.config.pattern.apply(instance, pattern, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::distribution::{ClientDistribution, Hotspot};
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;
    use wmn_model::{Area, RadioProfile};

    fn clustered_instance() -> ProblemInstance {
        // One heavy hotspot at (20, 20), a light one at (100, 100).
        let area = Area::square(128.0).unwrap();
        let dist = ClientDistribution::try_hotspots(vec![
            Hotspot {
                center: Point::new(20.0, 20.0),
                sigma: 5.0,
                weight: 4.0,
            },
            Hotspot {
                center: Point::new(100.0, 100.0),
                sigma: 5.0,
                weight: 1.0,
            },
        ])
        .unwrap();
        InstanceSpec::new(area, 16, 200, dist, RadioProfile::new(2.0, 8.0).unwrap())
            .unwrap()
            .generate(11)
            .unwrap()
    }

    #[test]
    fn placement_is_valid_on_paper_instance() {
        let inst = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let p = HotSpotPlacement::default().place(&inst, &mut rng_from_seed(3));
        assert!(inst.validate_placement(&p).is_ok());
    }

    #[test]
    fn most_powerful_router_lands_in_densest_zone() {
        let inst = clustered_instance();
        let m = HotSpotPlacement::new(HotSpotConfig {
            pattern: PatternConfig::exact(),
            ..HotSpotConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        let strongest = inst.routers_by_power_desc()[0];
        let pos = p[strongest];
        assert!(
            pos.distance(Point::new(20.0, 20.0)) < 25.0,
            "strongest router {pos} should sit at the heavy hotspot"
        );
    }

    #[test]
    fn routers_concentrate_on_client_mass() {
        let inst = clustered_instance();
        let p = HotSpotPlacement::default().place(&inst, &mut rng_from_seed(2));
        let near_spots = p
            .as_slice()
            .iter()
            .filter(|q| {
                q.distance(Point::new(20.0, 20.0)) < 40.0
                    || q.distance(Point::new(100.0, 100.0)) < 40.0
            })
            .count();
        assert!(
            near_spots >= 12,
            "most of 16 routers near hotspots, got {near_spots}"
        );
    }

    #[test]
    fn zone_ranking_respects_power_order() {
        let inst = clustered_instance();
        let m = HotSpotPlacement::new(HotSpotConfig {
            pattern: PatternConfig::exact(),
            ..HotSpotConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        let map = m.density_map(&inst);
        let by_power = inst.routers_by_power_desc();
        // Count clients within the zone around each of the two strongest
        // routers: the strongest must sit on at least as many clients.
        let zone_count = |pos: Point| {
            let (cx, cy) = map.cell_of(pos);
            let w = wmn_graph::density::CellWindow {
                cx: cx.saturating_sub(1),
                cy: cy.saturating_sub(1),
                w: 2,
                h: 2,
            };
            map.window_count(&w)
        };
        let first = zone_count(p[by_power[0]]);
        let last = zone_count(p[by_power[by_power.len() - 1]]);
        assert!(
            first >= last,
            "densest zone ({first}) must not be sparser than the last zone ({last})"
        );
    }

    #[test]
    fn more_routers_than_zones_cycles() {
        // 4x4 cells, 4x4 windows -> exactly 1 disjoint zone; all routers
        // cycle into it.
        let inst = clustered_instance();
        let m = HotSpotPlacement::new(HotSpotConfig {
            cells: 4,
            window_cells: 4,
            min_zone_clients: 1,
            pattern: PatternConfig::exact(),
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        assert!(inst.validate_placement(&p).is_ok());
        let first = p.as_slice()[0];
        assert!(p.as_slice().iter().all(|q| *q == first));
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = clustered_instance();
        let m = HotSpotPlacement::default();
        assert_eq!(
            m.place(&inst, &mut rng_from_seed(9)),
            m.place(&inst, &mut rng_from_seed(9))
        );
    }
}
