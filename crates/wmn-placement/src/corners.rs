//! **Corners** placement (paper §3, method 6).
//!
//! "Distributes the mesh routers in the corners of the grid area. The
//! considered areas in the corners are fixed by user specified parameter
//! values."
//!
//! Routers are dealt round-robin to the four corner squares and laid out on
//! a small cell grid inside each square.

use crate::method::{PatternConfig, PlacementHeuristic};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use wmn_model::geometry::{Point, Rect};
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Configuration for [`CornersPlacement`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CornersConfig {
    /// Side of each corner square, as a fraction of the smaller area
    /// dimension (the paper's user-specified corner size).
    pub corner_fraction: f64,
    /// Shared pattern adherence/jitter.
    pub pattern: PatternConfig,
}

impl Default for CornersConfig {
    fn default() -> Self {
        CornersConfig {
            corner_fraction: 0.25,
            pattern: PatternConfig::paper_default(),
        }
    }
}

/// Four-corners placement.
///
/// # Examples
///
/// ```
/// use wmn_placement::corners::CornersPlacement;
/// use wmn_placement::method::PlacementHeuristic;
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(7);
/// let placement = CornersPlacement::default().place(&instance, &mut rng);
/// instance.validate_placement(&placement)?;
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CornersPlacement {
    config: CornersConfig,
}

impl CornersPlacement {
    /// Creates the method with explicit configuration.
    pub fn new(config: CornersConfig) -> Self {
        CornersPlacement { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CornersConfig {
        &self.config
    }

    /// The four corner squares of `instance`'s area, in a fixed order
    /// (bottom-left, bottom-right, top-left, top-right).
    pub fn corner_rects(&self, instance: &ProblemInstance) -> [Rect; 4] {
        let area = instance.area();
        let side = self.config.corner_fraction.clamp(0.01, 0.5) * area.width().min(area.height());
        let (w, h) = (area.width(), area.height());
        [
            Rect::new(Point::new(0.0, 0.0), Point::new(side, side)),
            Rect::new(Point::new(w - side, 0.0), Point::new(w, side)),
            Rect::new(Point::new(0.0, h - side), Point::new(side, h)),
            Rect::new(Point::new(w - side, h - side), Point::new(w, h)),
        ]
    }
}

/// Lays `count` points on a near-square grid inside `rect` (row-major).
fn grid_in_rect(rect: &Rect, count: usize) -> Vec<Point> {
    if count == 0 {
        return Vec::new();
    }
    let cols = (count as f64).sqrt().ceil().max(1.0) as usize;
    let rows = count.div_ceil(cols);
    (0..count)
        .map(|i| {
            let (cx, cy) = (i % cols, i / cols);
            Point::new(
                rect.min().x + rect.width() * (cx as f64 + 0.5) / cols as f64,
                rect.min().y + rect.height() * (cy as f64 + 0.5) / rows as f64,
            )
        })
        .collect()
}

impl PlacementHeuristic for CornersPlacement {
    fn name(&self) -> &'static str {
        "Corners"
    }

    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement {
        let n = instance.router_count();
        let rects = self.corner_rects(instance);
        // Round-robin deal: corner k receives ceil((n - k) / 4) routers.
        let mut per_corner = [0usize; 4];
        for i in 0..n {
            per_corner[i % 4] += 1;
        }
        let grids: Vec<Vec<Point>> = rects
            .iter()
            .zip(per_corner)
            .map(|(r, c)| grid_in_rect(r, c))
            .collect();
        let mut cursors = [0usize; 4];
        let mut pattern = Vec::with_capacity(n);
        for i in 0..n {
            let k = i % 4;
            pattern.push(grids[k][cursors[k]]);
            cursors[k] += 1;
        }
        self.config.pattern.apply(instance, pattern, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn paper_instance() -> ProblemInstance {
        InstanceSpec::paper_uniform().unwrap().generate(1).unwrap()
    }

    #[test]
    fn routers_sit_in_corner_squares() {
        let inst = paper_instance();
        let m = CornersPlacement::default();
        let p = m.place(&inst, &mut rng_from_seed(4));
        assert!(inst.validate_placement(&p).is_ok());
        let rects = m.corner_rects(&inst);
        // Inflate by jitter reach for the count.
        let near = p
            .as_slice()
            .iter()
            .filter(|q| rects.iter().any(|r| r.clamp_point(**q).distance(**q) < 6.0))
            .count();
        assert!(near >= 55, "most routers in/near corners, got {near}/64");
    }

    #[test]
    fn exact_pattern_splits_evenly_across_corners() {
        let inst = paper_instance();
        let m = CornersPlacement::new(CornersConfig {
            pattern: PatternConfig::exact(),
            ..CornersConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        let rects = m.corner_rects(&inst);
        let counts: Vec<usize> = rects
            .iter()
            .map(|r| p.as_slice().iter().filter(|q| r.contains(**q)).count())
            .collect();
        assert_eq!(counts, vec![16, 16, 16, 16]);
    }

    #[test]
    fn uneven_count_deals_round_robin() {
        let spec = InstanceSpec::new(
            wmn_model::Area::square(100.0).unwrap(),
            6,
            8,
            wmn_model::ClientDistribution::Uniform,
            wmn_model::RadioProfile::paper_default(),
        )
        .unwrap();
        let inst = spec.generate(1).unwrap();
        let m = CornersPlacement::new(CornersConfig {
            pattern: PatternConfig::exact(),
            ..CornersConfig::default()
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        let rects = m.corner_rects(&inst);
        let counts: Vec<usize> = rects
            .iter()
            .map(|r| p.as_slice().iter().filter(|q| r.contains(**q)).count())
            .collect();
        assert_eq!(counts, vec![2, 2, 1, 1]);
    }

    #[test]
    fn corner_fraction_is_clamped() {
        let inst = paper_instance();
        let m = CornersPlacement::new(CornersConfig {
            corner_fraction: 5.0, // silly value -> clamped to 0.5
            pattern: PatternConfig::exact(),
        });
        let p = m.place(&inst, &mut rng_from_seed(1));
        assert!(inst.validate_placement(&p).is_ok());
        let rects = m.corner_rects(&inst);
        assert!(rects[0].width() <= 64.0 + 1e-9);
    }

    #[test]
    fn corner_rects_are_disjoint_for_small_fraction() {
        let inst = paper_instance();
        let m = CornersPlacement::default();
        let rects = m.corner_rects(&inst);
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(!a.intersects(b), "corner squares must not overlap");
            }
        }
    }
}
