//! **Random** placement (paper §3, method 1).
//!
//! "Mesh router nodes are uniformly at random distributed in the grid
//! area." The baseline every other method is compared against.

use crate::method::{PatternConfig, PlacementHeuristic};
use rand::{Rng, RngCore};
use wmn_model::geometry::Point;
use wmn_model::instance::ProblemInstance;
use wmn_model::placement::Placement;

/// Uniform random placement over the whole area.
///
/// # Examples
///
/// ```
/// use wmn_placement::method::PlacementHeuristic;
/// use wmn_placement::random::RandomPlacement;
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(2);
/// let placement = RandomPlacement::default().place(&instance, &mut rng);
/// instance.validate_placement(&placement)?;
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RandomPlacement {
    _private: (),
}

impl RandomPlacement {
    /// Creates the method.
    pub fn new() -> Self {
        RandomPlacement::default()
    }
}

impl PlacementHeuristic for RandomPlacement {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn place(&self, instance: &ProblemInstance, rng: &mut dyn RngCore) -> Placement {
        let area = instance.area();
        let pattern: Vec<Point> = (0..instance.router_count())
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..=area.width()),
                    rng.gen_range(0.0..=area.height()),
                )
            })
            .collect();
        // Adherence/jitter are identities for a uniform pattern; apply with
        // the exact config to share the clamp/validate path.
        PatternConfig::exact().apply(instance, pattern, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    #[test]
    fn placement_is_valid_and_deterministic() {
        let inst = InstanceSpec::paper_uniform().unwrap().generate(1).unwrap();
        let m = RandomPlacement::new();
        let a = m.place(&inst, &mut rng_from_seed(9));
        let b = m.place(&inst, &mut rng_from_seed(9));
        assert_eq!(a, b);
        assert!(inst.validate_placement(&a).is_ok());
        assert_eq!(m.name(), "Random");
    }

    #[test]
    fn spreads_over_all_quadrants() {
        let inst = InstanceSpec::paper_uniform().unwrap().generate(2).unwrap();
        let p = RandomPlacement::new().place(&inst, &mut rng_from_seed(1));
        let c = inst.area().center();
        let quads = [
            p.as_slice().iter().any(|q| q.x < c.x && q.y < c.y),
            p.as_slice().iter().any(|q| q.x >= c.x && q.y < c.y),
            p.as_slice().iter().any(|q| q.x < c.x && q.y >= c.y),
            p.as_slice().iter().any(|q| q.x >= c.x && q.y >= c.y),
        ];
        assert!(
            quads.iter().all(|&b| b),
            "64 uniform points hit all quadrants"
        );
    }

    #[test]
    fn always_applicable() {
        let inst = InstanceSpec::paper_uniform().unwrap().generate(3).unwrap();
        assert!(RandomPlacement::new().check_applicable(&inst).is_ok());
    }
}
