//! Property-based tests: every ad hoc method yields a valid placement on
//! arbitrary instances, deterministically per seed.

use proptest::prelude::*;
use wmn_model::distribution::ClientDistribution;
use wmn_model::geometry::Area;
use wmn_model::instance::{InstanceSpec, ProblemInstance};
use wmn_model::radio::RadioProfile;
use wmn_model::rng::rng_from_seed;
use wmn_placement::registry::AdHocMethod;

fn arbitrary_instance() -> impl Strategy<Value = ProblemInstance> {
    (
        20.0..300.0f64, // width
        20.0..300.0f64, // height
        1usize..80,     // routers
        1usize..120,    // clients
        0usize..4,      // distribution selector
        any::<u64>(),   // instance seed
    )
        .prop_map(|(w, h, routers, clients, which, seed)| {
            let area = Area::new(w, h).unwrap();
            let dist = match which {
                0 => ClientDistribution::Uniform,
                1 => ClientDistribution::paper_normal(&area).unwrap(),
                2 => ClientDistribution::paper_exponential(&area).unwrap(),
                _ => ClientDistribution::paper_weibull(&area).unwrap(),
            };
            InstanceSpec::new(area, routers, clients, dist, RadioProfile::paper_default())
                .unwrap()
                .generate(seed)
                .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_method_is_total_and_valid(instance in arbitrary_instance(), seed in any::<u64>()) {
        for method in AdHocMethod::all() {
            let h = method.heuristic();
            let placement = h.place(&instance, &mut rng_from_seed(seed));
            prop_assert!(
                instance.validate_placement(&placement).is_ok(),
                "{method} invalid on {instance}"
            );
            prop_assert_eq!(placement.len(), instance.router_count());
        }
    }

    #[test]
    fn every_method_is_deterministic(instance in arbitrary_instance(), seed in any::<u64>()) {
        for method in AdHocMethod::all() {
            let h = method.heuristic();
            let a = h.place(&instance, &mut rng_from_seed(seed));
            let b = h.place(&instance, &mut rng_from_seed(seed));
            prop_assert_eq!(a, b, "{} not deterministic", method);
        }
    }

    #[test]
    fn different_seeds_usually_differ(instance in arbitrary_instance(), seed in any::<u64>()) {
        // Stochastic methods must actually consume the RNG: with paper
        // defaults (adherence 0.9, jitter > 0) two different seeds virtually
        // never coincide on multi-router instances.
        prop_assume!(instance.router_count() >= 8);
        for method in AdHocMethod::all() {
            let h = method.heuristic();
            let a = h.place(&instance, &mut rng_from_seed(seed));
            let b = h.place(&instance, &mut rng_from_seed(seed ^ 0xDEAD_BEEF));
            prop_assert_ne!(a, b, "{} ignored its rng", method);
        }
    }
}
