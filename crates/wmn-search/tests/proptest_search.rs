//! Property-based tests for the search crate: apply/undo integrity and
//! search invariants on arbitrary instances.

use proptest::prelude::*;
use wmn_metrics::Evaluator;
use wmn_model::distribution::ClientDistribution;
use wmn_model::geometry::Area;
use wmn_model::instance::{InstanceSpec, ProblemInstance};
use wmn_model::radio::RadioProfile;
use wmn_model::rng::rng_from_seed;
use wmn_search::movement::{Movement, RandomMovement, SwapConfig, SwapMovement};
use wmn_search::neighborhood::ExplorationBudget;
use wmn_search::search::{NeighborhoodSearch, SearchConfig, StoppingCondition};

fn arbitrary_instance() -> impl Strategy<Value = ProblemInstance> {
    (
        40.0..200.0f64,
        2usize..32,
        1usize..64,
        0usize..3,
        any::<u64>(),
    )
        .prop_map(|(side, routers, clients, which, seed)| {
            let area = Area::square(side).unwrap();
            let dist = match which {
                0 => ClientDistribution::Uniform,
                1 => ClientDistribution::paper_normal(&area).unwrap(),
                _ => ClientDistribution::paper_exponential(&area).unwrap(),
            };
            InstanceSpec::new(area, routers, clients, dist, RadioProfile::paper_default())
                .unwrap()
                .generate(seed)
                .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn moves_apply_and_undo_cleanly(instance in arbitrary_instance(), seed in any::<u64>()) {
        let evaluator = Evaluator::paper_default(&instance);
        let mut rng = rng_from_seed(seed);
        let placement = instance.random_placement(&mut rng);
        let mut topo = evaluator.topology(&placement).unwrap();
        let movements: Vec<Box<dyn Movement>> = vec![
            Box::new(RandomMovement::new(&instance)),
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
        ];
        for movement in &movements {
            let snapshot = (topo.giant_size(), topo.covered_count(), topo.placement());
            for _ in 0..8 {
                let action = movement.propose(&topo, &mut rng);
                let undo = action.apply(&mut topo);
                undo.undo(&mut topo);
            }
            prop_assert_eq!(
                (topo.giant_size(), topo.covered_count(), topo.placement()),
                snapshot,
                "{} left the topology dirty", movement.name()
            );
        }
    }

    #[test]
    fn applied_moves_keep_topology_consistent(
        instance in arbitrary_instance(),
        seed in any::<u64>(),
    ) {
        let evaluator = Evaluator::paper_default(&instance);
        let mut rng = rng_from_seed(seed);
        let placement = instance.random_placement(&mut rng);
        let mut topo = evaluator.topology(&placement).unwrap();
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        for _ in 0..6 {
            let action = movement.propose(&topo, &mut rng);
            let _ = action.apply(&mut topo);
        }
        // Incremental state equals a full rebuild.
        topo.assert_consistent();
        // And the resulting placement is still a valid solution.
        prop_assert!(instance.validate_placement(&topo.placement()).is_ok());
    }

    #[test]
    fn search_outcome_invariants(instance in arbitrary_instance(), seed in any::<u64>()) {
        let evaluator = Evaluator::paper_default(&instance);
        let mut rng = rng_from_seed(seed);
        let initial = instance.random_placement(&mut rng);
        let search = NeighborhoodSearch::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            SearchConfig {
                budget: ExplorationBudget::sampled(4),
                stopping: StoppingCondition::fixed_phases(5),
            },
        );
        let outcome = search.run(&initial, &mut rng).unwrap();
        // Best never below initial; best placement validates; trace fitness
        // is monotone under strict-improvement acceptance.
        prop_assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
        prop_assert!(instance.validate_placement(&outcome.best_placement).is_ok());
        let mut prev = f64::NEG_INFINITY;
        for p in outcome.trace.phases() {
            prop_assert!(p.fitness() >= prev - 1e-9);
            prev = p.fitness();
        }
        // Re-evaluating the reported best placement reproduces its score.
        let re = evaluator.evaluate(&outcome.best_placement).unwrap();
        prop_assert_eq!(re, outcome.best_evaluation);
    }
}
