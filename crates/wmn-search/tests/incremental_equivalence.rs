//! Pins the incremental delta-evaluation engine to its reference oracles:
//! every search driver, run over the default dynamic-connectivity topology
//! ([`ConnectivityMode::Dynamic`]), must produce **bit-identical** outcomes
//! (best placement, evaluations, full traces) to both the whole-graph
//! DSU-rescan path ([`ConnectivityMode::DsuRescan`]) and the full-rebuild
//! reference ([`WmnTopology::set_rebuild_mode`]) — for both movements and
//! under both coverage rules.

use rand::RngCore;
use wmn_graph::topology::{ConnectivityMode, CoverageRule, TopologyConfig, WmnTopology};
use wmn_metrics::evaluator::Evaluator;
use wmn_model::instance::{InstanceSpec, ProblemInstance};
use wmn_model::placement::Placement;
use wmn_model::rng::rng_from_seed;
use wmn_search::annealing::{AnnealingConfig, SimulatedAnnealing};
use wmn_search::hill_climb::{HillClimb, HillClimbConfig};
use wmn_search::movement::{Movement, RandomMovement, SwapConfig, SwapMovement};
use wmn_search::neighborhood::ExplorationBudget;
use wmn_search::search::{NeighborhoodSearch, SearchConfig, StoppingCondition};
use wmn_search::tabu::{TabuConfig, TabuSearch};

fn paper_instance(seed: u64) -> ProblemInstance {
    InstanceSpec::paper_normal()
        .unwrap()
        .generate(seed)
        .unwrap()
}

fn configs() -> [TopologyConfig; 2] {
    [
        TopologyConfig::paper_default(),
        TopologyConfig {
            coverage_rule: CoverageRule::AnyRouter,
            ..TopologyConfig::paper_default()
        },
    ]
}

fn movements(instance: &ProblemInstance) -> Vec<Box<dyn Movement>> {
    vec![
        Box::new(RandomMovement::new(instance)),
        Box::new(SwapMovement::new(instance, SwapConfig::default())),
    ]
}

/// Builds the (dynamic, dsu-rescan, rebuild-only) topology trio for one
/// initial placement.
fn topo_trio(
    evaluator: &Evaluator<'_>,
    initial: &Placement,
) -> (WmnTopology, WmnTopology, WmnTopology) {
    let inc = evaluator.topology(initial).unwrap();
    assert_eq!(inc.connectivity_mode(), ConnectivityMode::Dynamic);
    let mut rescan = evaluator.topology(initial).unwrap();
    rescan.set_connectivity_mode(ConnectivityMode::DsuRescan);
    let mut reb = evaluator.topology(initial).unwrap();
    reb.set_rebuild_mode(true);
    (inc, rescan, reb)
}

/// Drives one driver three times — dynamic connectivity vs DSU rescan vs
/// rebuild-only — with identical RNG streams and asserts the outcomes are
/// equal.
fn assert_driver_equivalence<O: PartialEq + std::fmt::Debug>(
    evaluator: &Evaluator<'_>,
    initial: &Placement,
    seed: u64,
    mut run: impl FnMut(&mut WmnTopology, &mut dyn RngCore) -> O,
) {
    let (mut inc, mut rescan, mut reb) = topo_trio(evaluator, initial);
    let out_inc = run(&mut inc, &mut rng_from_seed(seed));
    let out_rescan = run(&mut rescan, &mut rng_from_seed(seed));
    let out_reb = run(&mut reb, &mut rng_from_seed(seed));
    assert_eq!(out_inc, out_rescan, "dynamic vs dsu-rescan diverged");
    assert_eq!(out_inc, out_reb, "incremental vs rebuild-only diverged");
    // The final *current* states must agree too.
    assert_eq!(inc.placement(), rescan.placement());
    assert_eq!(inc.placement(), reb.placement());
    assert_eq!(inc.giant_size(), reb.giant_size());
    assert_eq!(inc.covered_count(), reb.covered_count());
    assert_eq!(inc.components(), rescan.components());
    inc.assert_consistent();
    rescan.assert_consistent();
}

#[test]
fn neighborhood_search_is_bit_identical_to_rebuild_only() {
    for (k, config) in configs().into_iter().enumerate() {
        let instance = paper_instance(11 + k as u64);
        let evaluator = Evaluator::new(
            &instance,
            config,
            wmn_metrics::fitness::FitnessFunction::paper_default(),
        );
        let initial = instance.random_placement(&mut rng_from_seed(1));
        for movement in movements(&instance) {
            let search = NeighborhoodSearch::new(
                &evaluator,
                movement,
                SearchConfig {
                    budget: ExplorationBudget::sampled(8),
                    stopping: StoppingCondition::fixed_phases(10),
                },
            );
            assert_driver_equivalence(&evaluator, &initial, 42 + k as u64, |topo, rng| {
                search.run_with_topology(topo, rng)
            });
        }
    }
}

#[test]
fn hill_climb_is_bit_identical_to_rebuild_only() {
    for (k, config) in configs().into_iter().enumerate() {
        let instance = paper_instance(13 + k as u64);
        let evaluator = Evaluator::new(
            &instance,
            config,
            wmn_metrics::fitness::FitnessFunction::paper_default(),
        );
        let initial = instance.random_placement(&mut rng_from_seed(2));
        for movement in movements(&instance) {
            let climber = HillClimb::new(
                &evaluator,
                movement,
                HillClimbConfig {
                    max_phases: 12,
                    samples_per_phase: 16,
                    patience: 4,
                },
            );
            assert_driver_equivalence(&evaluator, &initial, 7 + k as u64, |topo, rng| {
                climber.run_with_topology(topo, rng)
            });
        }
    }
}

#[test]
fn annealing_is_bit_identical_to_rebuild_only() {
    for (k, config) in configs().into_iter().enumerate() {
        let instance = paper_instance(17 + k as u64);
        let evaluator = Evaluator::new(
            &instance,
            config,
            wmn_metrics::fitness::FitnessFunction::paper_default(),
        );
        let initial = instance.random_placement(&mut rng_from_seed(3));
        for movement in movements(&instance) {
            let sa = SimulatedAnnealing::new(
                &evaluator,
                movement,
                AnnealingConfig {
                    phases: 10,
                    moves_per_phase: 12,
                    ..AnnealingConfig::default()
                },
            );
            assert_driver_equivalence(&evaluator, &initial, 23 + k as u64, |topo, rng| {
                sa.run_with_topology(topo, rng)
            });
        }
    }
}

#[test]
fn tabu_is_bit_identical_to_rebuild_only() {
    for (k, config) in configs().into_iter().enumerate() {
        let instance = paper_instance(19 + k as u64);
        let evaluator = Evaluator::new(
            &instance,
            config,
            wmn_metrics::fitness::FitnessFunction::paper_default(),
        );
        let initial = instance.random_placement(&mut rng_from_seed(4));
        for movement in movements(&instance) {
            let tabu = TabuSearch::new(
                &evaluator,
                movement,
                TabuConfig {
                    phases: 10,
                    candidates_per_phase: 12,
                    ..TabuConfig::default()
                },
            );
            assert_driver_equivalence(&evaluator, &initial, 31 + k as u64, |topo, rng| {
                tabu.run_with_topology(topo, rng)
            });
        }
    }
}

#[test]
fn run_and_run_with_topology_agree() {
    // The convenience `run` entry point must equal an explicit topology.
    let instance = paper_instance(29);
    let evaluator = Evaluator::paper_default(&instance);
    let initial = instance.random_placement(&mut rng_from_seed(5));
    let movement = SwapMovement::new(&instance, SwapConfig::default());
    let search = NeighborhoodSearch::new(
        &evaluator,
        Box::new(movement),
        SearchConfig {
            budget: ExplorationBudget::sampled(8),
            stopping: StoppingCondition::fixed_phases(8),
        },
    );
    let via_run = search.run(&initial, &mut rng_from_seed(6)).unwrap();
    let mut topo = evaluator.topology(&initial).unwrap();
    let via_topo = search.run_with_topology(&mut topo, &mut rng_from_seed(6));
    assert_eq!(via_run, via_topo);
}
