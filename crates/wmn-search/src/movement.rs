//! Movement types: local perturbations of a placement.
//!
//! Paper §4 defines neighborhood structure through a **movement type**. Two
//! are evaluated: a purely random relocation ([`RandomMovement`]) and the
//! **swap movement** of Algorithm 3 ([`SwapMovement`]) — "the worst router
//! (that of smallest radio coverage) in the most dense area is exchanged
//! with the best router (that of largest radio coverage) of the sparsest
//! area", promoting the best routers into the densest client zones.
//!
//! The paper leaves one case unspecified: the densest client area may
//! contain **no router at all** (common early in a search). Following the
//! movement's stated intent, [`SwapMovement`] then relocates the sparse
//! area's strongest router into the dense area ("swap with an empty slot").
//! This gap-fill is documented in DESIGN.md and exercised by tests.

use rand::{Rng, RngCore};
use std::cell::RefCell;
use std::fmt;
use wmn_graph::density::{CellWindow, DensityMap};
use wmn_graph::topology::WmnTopology;
use wmn_model::geometry::{Point, Rect};
use wmn_model::instance::ProblemInstance;
use wmn_model::node::RouterId;
use wmn_model::placement::Placement;

/// A concrete, applicable local perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MoveAction {
    /// Move one router to a new position.
    Relocate {
        /// The router to move.
        router: RouterId,
        /// Destination (clamped into the area on application).
        to: Point,
    },
    /// Exchange the positions of two routers (radii stay with their
    /// routers).
    Swap {
        /// First router.
        a: RouterId,
        /// Second router.
        b: RouterId,
    },
}

/// Token to revert an applied [`MoveAction`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UndoAction(MoveAction);

impl MoveAction {
    /// Applies the move to a topology, returning the undo token.
    pub fn apply(&self, topo: &mut WmnTopology) -> UndoAction {
        match *self {
            MoveAction::Relocate { router, to } => {
                let old = topo.move_router(router, to);
                UndoAction(MoveAction::Relocate { router, to: old })
            }
            MoveAction::Swap { a, b } => {
                topo.swap_routers(a, b);
                UndoAction(MoveAction::Swap { a, b })
            }
        }
    }

    /// Applies the move to a bare placement vector, without any network
    /// repair: a relocation sets the router's gene **verbatim** (no area
    /// clamping — producers of placement-level moves, e.g. the GA's
    /// mutation planner, clamp at proposal time) and a swap exchanges two
    /// genes. This is the chromosome-side counterpart of
    /// [`MoveAction::apply`], shared by the GA so mutation and search
    /// speak the same move vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if a router id is out of range for `placement`.
    pub fn apply_to_placement(&self, placement: &mut Placement) {
        match *self {
            MoveAction::Relocate { router, to } => placement[router] = to,
            MoveAction::Swap { a, b } => placement.swap(a, b),
        }
    }
}

impl UndoAction {
    /// Reverts the move this token was produced by.
    pub fn undo(self, topo: &mut WmnTopology) {
        let _ = self.0.apply(topo);
    }
}

/// A movement type: proposes candidate perturbations of the current state.
///
/// Movements are constructed against a fixed instance (client positions
/// never change), then propose moves against evolving topologies.
pub trait Movement: fmt::Debug {
    /// Short stable name (used by figure legends): `"Swap"`, `"Random"`.
    fn name(&self) -> &'static str;

    /// Proposes one candidate move for the current topology.
    fn propose(&self, topo: &WmnTopology, rng: &mut dyn RngCore) -> MoveAction;
}

/// Purely random relocation: a uniformly chosen router moves to a uniformly
/// chosen position (the paper's random-movement baseline of Figure 4).
#[derive(Debug, Clone)]
pub struct RandomMovement {
    width: f64,
    height: f64,
}

impl RandomMovement {
    /// Creates the movement for `instance`'s area.
    pub fn new(instance: &ProblemInstance) -> Self {
        RandomMovement {
            width: instance.area().width(),
            height: instance.area().height(),
        }
    }
}

impl Movement for RandomMovement {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn propose(&self, topo: &WmnTopology, rng: &mut dyn RngCore) -> MoveAction {
        let router = RouterId(rng.gen_range(0..topo.router_count()));
        let to = Point::new(
            rng.gen_range(0.0..=self.width),
            rng.gen_range(0.0..=self.height),
        );
        MoveAction::Relocate { router, to }
    }
}

/// Configuration for [`SwapMovement`] (paper Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapConfig {
    /// Density grid resolution (`cells × cells` over the area).
    pub cells: usize,
    /// Dense/sparse window size in cells (`Hg = Wg = window_cells`).
    pub window_cells: usize,
    /// How many of the top dense windows to sample among (randomizing the
    /// neighborhood so Algorithm 2 has distinct candidates to examine).
    pub dense_candidates: usize,
    /// How many of the bottom sparse windows to sample among.
    pub sparse_candidates: usize,
    /// Minimum client count for a window to qualify as "dense" (the
    /// paper's dense threshold).
    pub dense_threshold: u64,
    /// Maximum client count for a window to qualify as "sparse" (the
    /// paper's sparse threshold).
    pub sparse_threshold: u64,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig {
            cells: 16,
            window_cells: 2,
            dense_candidates: 4,
            sparse_candidates: 4,
            dense_threshold: 1,
            sparse_threshold: u64::MAX,
        }
    }
}

/// The swap movement of Algorithm 3.
///
/// Per proposal:
/// 1. pick a *dense* window among the top client-count windows;
/// 2. pick a *sparse* window among the bottom client-count windows that
///    still contain at least one router;
/// 3. find the **weakest** router inside the dense window and the
///    **strongest** router inside the sparse window;
/// 4. swap their positions — or, when the dense window holds no router,
///    relocate the strong router into the dense window (documented
///    gap-fill).
///
/// # Examples
///
/// ```
/// use wmn_search::movement::{Movement, SwapMovement};
/// use wmn_graph::topology::{TopologyConfig, WmnTopology};
/// use wmn_model::prelude::*;
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let mut rng = rng_from_seed(2);
/// let placement = instance.random_placement(&mut rng);
/// let topo = WmnTopology::build(&instance, &placement, TopologyConfig::paper_default())?;
///
/// let movement = SwapMovement::new(&instance, Default::default());
/// let action = movement.propose(&topo, &mut rng);
/// println!("proposed {action:?}");
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SwapMovement {
    config: SwapConfig,
    client_map: DensityMap,
    /// All disjoint windows ranked by client count, descending. Computed
    /// once — client positions are fixed per instance.
    ranked_zones: Vec<CellWindow>,
    /// Per-proposal scratch buffers (interior mutability because
    /// [`Movement::propose`] takes `&self`): once warm, a proposal
    /// performs zero heap allocations, keeping the whole search inner
    /// loop allocation-free.
    scratch: RefCell<ProposeScratch>,
}

/// Reusable buffers for one [`SwapMovement::propose`] call.
#[derive(Debug, Clone, Default)]
struct ProposeScratch {
    routers_per_zone: Vec<usize>,
    dense_pool: Vec<usize>,
    sparse_pool: Vec<usize>,
    sparse_routers: Vec<RouterId>,
    dense_routers: Vec<RouterId>,
    non_giant: Vec<RouterId>,
}

impl SwapMovement {
    /// Creates the movement for `instance` with the given configuration.
    pub fn new(instance: &ProblemInstance, config: SwapConfig) -> Self {
        let cells = config.cells.max(1);
        let client_map =
            DensityMap::from_points(&instance.area(), &instance.client_positions(), cells, cells);
        let ranked_zones = client_map.ranked_disjoint_windows(
            config.window_cells,
            config.window_cells,
            usize::MAX,
        );
        SwapMovement {
            config,
            client_map,
            ranked_zones,
            scratch: RefCell::new(ProposeScratch::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SwapConfig {
        &self.config
    }

    fn routers_into(&self, topo: &WmnTopology, rect: &Rect, out: &mut Vec<RouterId>) {
        out.clear();
        out.extend(
            (0..topo.router_count())
                .map(RouterId)
                .filter(|&id| rect.contains(topo.position(id))),
        );
    }

    fn weakest(&self, topo: &WmnTopology, ids: &[RouterId]) -> Option<RouterId> {
        ids.iter().copied().min_by(|&a, &b| {
            topo.radius(a)
                .partial_cmp(&topo.radius(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index().cmp(&b.index()))
        })
    }

    fn strongest(&self, topo: &WmnTopology, ids: &[RouterId]) -> Option<RouterId> {
        ids.iter().copied().max_by(|&a, &b| {
            topo.radius(a)
                .partial_cmp(&topo.radius(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.index().cmp(&a.index()))
        })
    }

    fn fallback_random(&self, topo: &WmnTopology, rng: &mut dyn RngCore) -> MoveAction {
        let area = self.client_map.area();
        MoveAction::Relocate {
            router: RouterId(rng.gen_range(0..topo.router_count())),
            to: Point::new(
                rng.gen_range(0.0..=area.width()),
                rng.gen_range(0.0..=area.height()),
            ),
        }
    }
}

impl Movement for SwapMovement {
    fn name(&self) -> &'static str {
        "Swap"
    }

    fn propose(&self, topo: &WmnTopology, rng: &mut dyn RngCore) -> MoveAction {
        let mut scratch = self.scratch.borrow_mut();
        let ProposeScratch {
            routers_per_zone,
            dense_pool,
            sparse_pool,
            sparse_routers,
            dense_routers,
            non_giant,
        } = &mut *scratch;

        // Current router occupancy per zone (zones are disjoint, so each
        // router maps to at most one).
        routers_per_zone.clear();
        routers_per_zone.resize(self.ranked_zones.len(), 0);
        for i in 0..topo.router_count() {
            let p = topo.position(RouterId(i));
            for (zi, z) in self.ranked_zones.iter().enumerate() {
                if self.client_map.window_rect(z).contains(p) {
                    routers_per_zone[zi] += 1;
                    break;
                }
            }
        }

        // The paper's "dense threshold", operationalized as a router
        // deficit: a dense zone keeps attracting routers while it holds
        // fewer than clients/kappa of them (kappa = clients per router in
        // the whole instance). Zones are examined in client-count order, so
        // the densest under-served zone ranks first.
        let total_clients: f64 = self.client_map.total() as f64;
        let kappa = (total_clients / topo.router_count() as f64).max(1.0);
        dense_pool.clear();
        let dense_cap = self.config.dense_candidates.max(1);
        for (zi, &occupancy) in routers_per_zone.iter().enumerate() {
            if dense_pool.len() == dense_cap {
                break;
            }
            let clients = self.client_map.window_count(&self.ranked_zones[zi]);
            if clients >= self.config.dense_threshold.max(1)
                && (clients as f64) / kappa > occupancy as f64
            {
                dense_pool.push(zi);
            }
        }

        // Step 3: the dense target. With a deficit somewhere, the dense zone
        // is an under-served one (relocate mode); otherwise it is the
        // densest zone that holds a router (literal swap mode).
        let relocate_mode = !dense_pool.is_empty();
        let dense_zi = if relocate_mode {
            *pick(dense_pool, rng).expect("nonempty pool")
        } else {
            match (0..self.ranked_zones.len()).find(|&zi| routers_per_zone[zi] > 0) {
                Some(zi) => zi,
                None => return self.fallback_random(topo, rng),
            }
        };
        let dense_rect = self.client_map.window_rect(&self.ranked_zones[dense_zi]);

        // Step 5 of Algorithm 3: the sparsest zones that still hold a
        // router to take the strong one from (never the dense zone itself).
        sparse_pool.clear();
        let sparse_cap = self.config.sparse_candidates.max(1);
        for zi in (0..self.ranked_zones.len()).rev() {
            if sparse_pool.len() == sparse_cap {
                break;
            }
            if zi != dense_zi
                && self.client_map.window_count(&self.ranked_zones[zi])
                    <= self.config.sparse_threshold
                && routers_per_zone[zi] > 0
            {
                sparse_pool.push(zi);
            }
        }
        let Some(&sparse_zi) = pick(sparse_pool, rng) else {
            return self.fallback_random(topo, rng);
        };
        // A "sparse" zone at least as client-heavy as the dense target means
        // the zone structure is degenerate; fall back rather than swap
        // backwards.
        if self.client_map.window_count(&self.ranked_zones[sparse_zi])
            > self.client_map.window_count(&self.ranked_zones[dense_zi])
        {
            return self.fallback_random(topo, rng);
        }
        let sparse_rect = self.client_map.window_rect(&self.ranked_zones[sparse_zi]);

        // Step 6: most powerful router within the sparse area. In relocate
        // mode prefer a router *outside* the giant component — pulling a
        // giant member out would tear down the connectivity the move is
        // meant to build.
        self.routers_into(topo, &sparse_rect, sparse_routers);
        let strong = if relocate_mode {
            non_giant.clear();
            non_giant.extend(
                sparse_routers
                    .iter()
                    .copied()
                    .filter(|&id| !topo.in_giant(id)),
            );
            self.strongest(topo, non_giant)
                .or_else(|| self.strongest(topo, sparse_routers))
        } else {
            self.strongest(topo, sparse_routers)
        };
        let Some(strong) = strong else {
            return self.fallback_random(topo, rng);
        };

        if relocate_mode {
            // Under-served dense zone: pull the strong router in ("swap with
            // an empty slot" — the documented gap-fill). The landing spot is
            // anchored within link range of an existing router — a dense-
            // zone occupant when there is one, otherwise the giant-component
            // member closest to the zone — and biased toward the zone
            // center, so each accepted move both extends the mesh ("re-
            // establish mesh nodes network connections") and marches it
            // onto the client mass. An unanchored landing almost never
            // links under the mutual-range rule and would be rejected by
            // the improvement-only acceptance of Algorithm 1.
            let center = dense_rect.center();
            self.routers_into(topo, &dense_rect, dense_routers);
            dense_routers.retain(|&id| id != strong);
            let anchor = pick(dense_routers, rng).copied().or_else(|| {
                (0..topo.router_count())
                    .map(RouterId)
                    .filter(|&id| id != strong && topo.in_giant(id))
                    .min_by(|&a, &b| {
                        let da = topo.position(a).distance_squared(center);
                        let db = topo.position(b).distance_squared(center);
                        da.partial_cmp(&db)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.index().cmp(&b.index()))
                    })
            });
            let to = match anchor {
                Some(anchor) => {
                    let a = topo.position(anchor);
                    let reach = topo.radius(anchor).min(topo.radius(strong));
                    let toward = (center.y - a.y).atan2(center.x - a.x);
                    let angle = toward + rng.gen_range(-1.0..1.0);
                    let dist = reach * rng.gen_range(0.4..0.95);
                    Point::new(a.x + dist * angle.cos(), a.y + dist * angle.sin())
                }
                None => Point::new(
                    rng.gen_range(dense_rect.min().x..=dense_rect.max().x),
                    rng.gen_range(dense_rect.min().y..=dense_rect.max().y),
                ),
            };
            return MoveAction::Relocate { router: strong, to };
        }

        // Step 4 + 7: the literal Algorithm 3 swap — weakest router of the
        // dense zone exchanges positions with the strong one.
        self.routers_into(topo, &dense_rect, dense_routers);
        match self.weakest(topo, dense_routers) {
            Some(weak) if weak != strong => MoveAction::Swap { a: weak, b: strong },
            _ => self.fallback_random(topo, rng),
        }
    }
}

/// Uniformly picks an element of a slice, or `None` when empty.
fn pick<'a, T>(pool: &'a [T], rng: &mut dyn RngCore) -> Option<&'a T> {
    if pool.is_empty() {
        None
    } else {
        Some(&pool[rng.gen_range(0..pool.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_graph::topology::TopologyConfig;
    use wmn_model::instance::InstanceSpec;
    use wmn_model::placement::Placement;
    use wmn_model::rng::rng_from_seed;

    fn setup(seed: u64) -> (ProblemInstance, WmnTopology) {
        let instance = InstanceSpec::paper_normal()
            .unwrap()
            .generate(seed)
            .unwrap();
        let mut rng = rng_from_seed(seed ^ 0xF00D);
        let placement = instance.random_placement(&mut rng);
        let topo =
            WmnTopology::build(&instance, &placement, TopologyConfig::paper_default()).unwrap();
        (instance, topo)
    }

    #[test]
    fn apply_then_undo_restores_state() {
        let (instance, mut topo) = setup(1);
        let mut rng = rng_from_seed(2);
        let movements: Vec<Box<dyn Movement>> = vec![
            Box::new(RandomMovement::new(&instance)),
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
        ];
        for movement in &movements {
            for _ in 0..20 {
                let snapshot = (topo.giant_size(), topo.covered_count(), topo.placement());
                let action = movement.propose(&topo, &mut rng);
                let undo = action.apply(&mut topo);
                undo.undo(&mut topo);
                assert_eq!(
                    (topo.giant_size(), topo.covered_count(), topo.placement()),
                    snapshot,
                    "{} move not undone cleanly",
                    movement.name()
                );
            }
        }
    }

    #[test]
    fn apply_to_placement_tracks_topology_apply() {
        // Placement-level application must land the same placements as the
        // topology-level one (for in-area targets, which movements propose).
        let (instance, mut topo) = setup(2);
        let mut placement = topo.placement();
        let mut rng = rng_from_seed(9);
        let movements: Vec<Box<dyn Movement>> = vec![
            Box::new(RandomMovement::new(&instance)),
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
        ];
        for movement in &movements {
            for _ in 0..30 {
                let mut action = movement.propose(&topo, &mut rng);
                // Placement-level application is verbatim (no clamping);
                // clamp the proposal first, as placement-level producers do.
                if let MoveAction::Relocate { to, .. } = &mut action {
                    *to = instance.area().clamp_point(*to);
                }
                action.apply(&mut topo);
                action.apply_to_placement(&mut placement);
                assert_eq!(placement, topo.placement(), "{}", movement.name());
            }
        }
    }

    #[test]
    fn random_movement_targets_every_router_eventually() {
        let (instance, topo) = setup(3);
        let movement = RandomMovement::new(&instance);
        let mut rng = rng_from_seed(5);
        let mut hit = vec![false; topo.router_count()];
        for _ in 0..4000 {
            if let MoveAction::Relocate { router, .. } = movement.propose(&topo, &mut rng) {
                hit[router.index()] = true;
            }
        }
        assert!(hit.iter().all(|&b| b), "some router never proposed");
    }

    #[test]
    fn swap_proposals_are_swaps_or_dense_relocations() {
        let (instance, topo) = setup(7);
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let mut rng = rng_from_seed(11);
        let mut swaps = 0;
        let mut relocations = 0;
        for _ in 0..200 {
            match movement.propose(&topo, &mut rng) {
                MoveAction::Swap { a, b } => {
                    assert_ne!(a, b);
                    swaps += 1;
                }
                MoveAction::Relocate { .. } => relocations += 1,
            }
        }
        assert_eq!(swaps + relocations, 200);
        // On a random placement over a Normal client cluster both kinds
        // occur across 200 proposals.
        assert!(
            relocations > 0,
            "dense windows start empty: expect relocations"
        );
    }

    #[test]
    fn swap_swaps_weak_in_dense_with_strong_in_sparse() {
        // No-deficit scenario (both zones hold their fair share of routers,
        // kappa = 40 clients / 4 routers = 10):
        //   zone A: 30 clients, 3 routers (needs 3) — weakest is router 0;
        //   zone B: 10 clients, 1 router (needs 1) — the strong router 3.
        // The literal Algorithm 3 swap must pair router 0 with router 3.
        use wmn_model::geometry::Point;
        use wmn_model::instance::InstanceBuilder;
        use wmn_model::radio::RadioProfile;
        let area = wmn_model::Area::square(128.0).unwrap();
        let prof = RadioProfile::new(2.0, 8.0).unwrap();
        let instance = InstanceBuilder::new(area)
            .router(prof, 2.0) // weakest, in dense zone A
            .router(prof, 5.0) // in zone A
            .router(prof, 6.0) // in zone A
            .router(prof, 8.0) // strongest, in sparse zone B
            .clients((0..30).map(|i| Point::new(2.0 + (i % 6) as f64, 2.0 + (i / 6) as f64 * 2.0)))
            .clients(
                (0..10).map(|i| Point::new(100.0 + (i % 4) as f64, 100.0 + (i / 4) as f64 * 2.0)),
            )
            .build()
            .unwrap();
        let placement = Placement::from_points(vec![
            Point::new(6.0, 6.0),
            Point::new(10.0, 10.0),
            Point::new(12.0, 4.0),
            Point::new(104.0, 104.0),
        ]);
        let topo =
            WmnTopology::build(&instance, &placement, TopologyConfig::paper_default()).unwrap();
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let mut rng = rng_from_seed(1);
        let mut saw_target_swap = false;
        for _ in 0..100 {
            if let MoveAction::Swap { a, b } = movement.propose(&topo, &mut rng) {
                assert_eq!(
                    (a, b),
                    (RouterId(0), RouterId(3)),
                    "swap must pair weak-in-dense with strong-in-sparse"
                );
                saw_target_swap = true;
            }
        }
        assert!(saw_target_swap, "the canonical swap was never proposed");
    }

    #[test]
    fn swap_relocates_lone_router_into_empty_dense_zone() {
        // A single router far from the client cluster: no anchor exists, so
        // the gap-fill lands the router uniformly inside the dense window.
        use wmn_model::geometry::Point;
        use wmn_model::instance::InstanceBuilder;
        use wmn_model::radio::RadioProfile;
        let area = wmn_model::Area::square(128.0).unwrap();
        let prof = RadioProfile::new(2.0, 8.0).unwrap();
        let instance = InstanceBuilder::new(area)
            .router(prof, 8.0)
            .clients((0..40).map(|i| Point::new(4.0 + (i % 8) as f64, 4.0 + (i / 8) as f64)))
            .build()
            .unwrap();
        let placement = Placement::from_points(vec![Point::new(100.0, 100.0)]);
        let topo =
            WmnTopology::build(&instance, &placement, TopologyConfig::paper_default()).unwrap();
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let mut rng = rng_from_seed(1);
        let mut landed_in_cluster_window = false;
        for _ in 0..100 {
            if let MoveAction::Relocate { router, to } = movement.propose(&topo, &mut rng) {
                if router == RouterId(0) && to.x < 32.0 && to.y < 32.0 {
                    landed_in_cluster_window = true;
                }
            }
        }
        assert!(
            landed_in_cluster_window,
            "empty dense zone must pull the router in"
        );
    }

    #[test]
    fn swap_relocation_lands_within_link_range_of_an_anchor() {
        // Dense zone already occupied: the incoming router must land within
        // mutual link range of an occupant so the move can improve
        // connectivity.
        use wmn_model::geometry::Point;
        use wmn_model::instance::InstanceBuilder;
        use wmn_model::radio::RadioProfile;
        let area = wmn_model::Area::square(128.0).unwrap();
        let prof = RadioProfile::new(2.0, 8.0).unwrap();
        let instance = InstanceBuilder::new(area)
            .router(prof, 6.0) // anchor, sits on the cluster
            .router(prof, 8.0) // strong, far away
            .clients((0..60).map(|i| Point::new(4.0 + (i % 8) as f64, 4.0 + (i / 8) as f64)))
            .build()
            .unwrap();
        let placement =
            Placement::from_points(vec![Point::new(8.0, 8.0), Point::new(100.0, 100.0)]);
        let topo =
            WmnTopology::build(&instance, &placement, TopologyConfig::paper_default()).unwrap();
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let mut rng = rng_from_seed(2);
        let mut anchored = 0;
        let mut relocations = 0;
        for _ in 0..200 {
            if let MoveAction::Relocate { router, to } = movement.propose(&topo, &mut rng) {
                relocations += 1;
                if router == RouterId(1) {
                    let d = to.distance(Point::new(8.0, 8.0));
                    if d <= 6.0 {
                        anchored += 1; // within min(6, 8) of the anchor
                    }
                }
            }
        }
        assert!(relocations > 0);
        assert!(
            anchored * 2 >= relocations,
            "most relocations should land in link range of the anchor: {anchored}/{relocations}"
        );
    }

    #[test]
    fn movement_names() {
        let (instance, _) = setup(1);
        assert_eq!(RandomMovement::new(&instance).name(), "Random");
        assert_eq!(
            SwapMovement::new(&instance, SwapConfig::default()).name(),
            "Swap"
        );
    }
}
