//! Per-phase search traces (the data behind Figure 4).

use serde::{Deserialize, Serialize};
use wmn_metrics::stats::Trace;

/// What happened in one phase of neighborhood exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// 1-based phase number.
    pub phase: usize,
    /// Giant component size of the *current* solution after the phase.
    pub giant_size: usize,
    /// Covered clients of the current solution after the phase.
    pub covered_clients: usize,
    /// Scalar fitness of the current solution after the phase.
    pub fitness: f64,
    /// Whether the phase's best neighbor was accepted.
    pub accepted: bool,
}

/// The full per-phase history of one search run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    phases: Vec<PhaseRecord>,
}

impl SearchTrace {
    /// An empty trace.
    pub fn new() -> Self {
        SearchTrace::default()
    }

    /// Appends a phase record.
    pub fn push(&mut self, record: PhaseRecord) {
        self.phases.push(record);
    }

    /// All phase records in order.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Returns `true` when no phases are recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Number of phases whose best neighbor was accepted.
    pub fn accepted_count(&self) -> usize {
        self.phases.iter().filter(|p| p.accepted).count()
    }

    /// Converts to a named `(phase, giant_size)` series — the y-axis of the
    /// paper's Figure 4.
    pub fn giant_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for p in &self.phases {
            t.push(p.phase as f64, p.giant_size as f64);
        }
        t
    }

    /// Converts to a named `(phase, fitness)` series.
    pub fn fitness_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for p in &self.phases {
            t.push(p.phase as f64, p.fitness);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(phase: usize, giant: usize, accepted: bool) -> PhaseRecord {
        PhaseRecord {
            phase,
            giant_size: giant,
            covered_clients: giant * 2,
            fitness: giant as f64 / 64.0,
            accepted,
        }
    }

    #[test]
    fn push_and_accessors() {
        let mut t = SearchTrace::new();
        assert!(t.is_empty());
        t.push(record(1, 5, true));
        t.push(record(2, 5, false));
        t.push(record(3, 9, true));
        assert_eq!(t.len(), 3);
        assert_eq!(t.accepted_count(), 2);
    }

    #[test]
    fn giant_series_mirrors_phases() {
        let mut t = SearchTrace::new();
        t.push(record(1, 3, true));
        t.push(record(2, 8, true));
        let s = t.giant_series("Swap");
        assert_eq!(s.name(), "Swap");
        assert_eq!(s.points(), &[(1.0, 3.0), (2.0, 8.0)]);
        assert_eq!(s.max_y(), Some(8.0));
    }

    #[test]
    fn fitness_series_mirrors_phases() {
        let mut t = SearchTrace::new();
        t.push(record(1, 32, true));
        let s = t.fitness_series("x");
        assert_eq!(s.points(), &[(1.0, 0.5)]);
    }
}
