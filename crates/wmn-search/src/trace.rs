//! Per-phase search traces (the data behind Figure 4).
//!
//! The per-phase record embeds the engine-agnostic
//! [`ProgressPoint`](wmn_metrics::stats::ProgressPoint) from
//! `wmn-metrics`, the same shape the GA's per-generation trace uses — so
//! figure writers and telemetry consume one type regardless of which
//! engine produced the run.

use serde::{Deserialize, Serialize};
use wmn_metrics::stats::{ProgressPoint, Trace};

/// What happened in one phase of neighborhood exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Solution quality after the phase (`step` is the 1-based phase
    /// number).
    pub progress: ProgressPoint,
    /// Whether the phase's best neighbor was accepted.
    pub accepted: bool,
}

impl PhaseRecord {
    /// Builds a record for one phase.
    pub fn new(
        phase: usize,
        fitness: f64,
        giant_size: usize,
        covered_clients: usize,
        accepted: bool,
    ) -> Self {
        PhaseRecord {
            progress: ProgressPoint::new(phase, fitness, giant_size, covered_clients),
            accepted,
        }
    }

    /// 1-based phase number.
    pub fn phase(&self) -> usize {
        self.progress.step
    }

    /// Giant component size of the *current* solution after the phase.
    pub fn giant_size(&self) -> usize {
        self.progress.giant_size
    }

    /// Covered clients of the current solution after the phase.
    pub fn covered_clients(&self) -> usize {
        self.progress.covered_clients
    }

    /// Scalar fitness of the current solution after the phase.
    pub fn fitness(&self) -> f64 {
        self.progress.fitness
    }
}

/// The full per-phase history of one search run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    phases: Vec<PhaseRecord>,
}

impl SearchTrace {
    /// An empty trace.
    pub fn new() -> Self {
        SearchTrace::default()
    }

    /// Appends a phase record.
    pub fn push(&mut self, record: PhaseRecord) {
        self.phases.push(record);
    }

    /// All phase records in order.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Returns `true` when no phases are recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Number of phases whose best neighbor was accepted.
    pub fn accepted_count(&self) -> usize {
        self.phases.iter().filter(|p| p.accepted).count()
    }

    /// Converts to a named `(phase, giant_size)` series — the y-axis of the
    /// paper's Figure 4.
    pub fn giant_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for p in &self.phases {
            let (x, y) = p.progress.giant_xy();
            t.push(x, y);
        }
        t
    }

    /// Converts to a named `(phase, fitness)` series.
    pub fn fitness_series(&self, name: impl Into<String>) -> Trace {
        let mut t = Trace::new(name);
        for p in &self.phases {
            let (x, y) = p.progress.fitness_xy();
            t.push(x, y);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(phase: usize, giant: usize, accepted: bool) -> PhaseRecord {
        PhaseRecord::new(phase, giant as f64 / 64.0, giant, giant * 2, accepted)
    }

    #[test]
    fn push_and_accessors() {
        let mut t = SearchTrace::new();
        assert!(t.is_empty());
        t.push(record(1, 5, true));
        t.push(record(2, 5, false));
        t.push(record(3, 9, true));
        assert_eq!(t.len(), 3);
        assert_eq!(t.accepted_count(), 2);
    }

    #[test]
    fn record_accessors_mirror_the_progress_point() {
        let r = record(4, 16, true);
        assert_eq!(r.phase(), 4);
        assert_eq!(r.giant_size(), 16);
        assert_eq!(r.covered_clients(), 32);
        assert_eq!(r.fitness(), 0.25);
        assert_eq!(r.progress.step, 4);
    }

    #[test]
    fn giant_series_mirrors_phases() {
        let mut t = SearchTrace::new();
        t.push(record(1, 3, true));
        t.push(record(2, 8, true));
        let s = t.giant_series("Swap");
        assert_eq!(s.name(), "Swap");
        assert_eq!(s.points(), &[(1.0, 3.0), (2.0, 8.0)]);
        assert_eq!(s.max_y(), Some(8.0));
    }

    #[test]
    fn fitness_series_mirrors_phases() {
        let mut t = SearchTrace::new();
        t.push(record(1, 32, true));
        let s = t.fitness_series("x");
        assert_eq!(s.points(), &[(1.0, 0.5)]);
    }
}
