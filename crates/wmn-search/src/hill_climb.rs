//! First-improvement hill climbing.
//!
//! A lighter alternative to the best-neighbor search of Algorithm 1: each
//! phase samples movements one at a time and accepts the **first** one that
//! improves the current solution, instead of evaluating the full budget.
//! Part of the "full featured local search methods" the paper lists as
//! future work.

use crate::movement::Movement;
use crate::trace::{PhaseRecord, SearchTrace};
use rand::RngCore;
use wmn_graph::topology::WmnTopology;
use wmn_metrics::evaluator::{Evaluation, Evaluator};
use wmn_model::placement::Placement;
use wmn_model::ModelError;
use wmn_obs::phase as obs_phase;
use wmn_obs::{NoopRecorder, Recorder};

/// Configuration for [`HillClimb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HillClimbConfig {
    /// Maximum phases (each phase = one accepted move or exhaustion).
    pub max_phases: usize,
    /// Samples per phase before declaring the phase non-improving.
    pub samples_per_phase: usize,
    /// Stop after this many consecutive non-improving phases.
    pub patience: usize,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            max_phases: 61,
            samples_per_phase: 32,
            patience: 3,
        }
    }
}

/// First-improvement hill climber.
///
/// # Examples
///
/// ```
/// use wmn_metrics::Evaluator;
/// use wmn_model::prelude::*;
/// use wmn_search::hill_climb::{HillClimb, HillClimbConfig};
/// use wmn_search::movement::{SwapConfig, SwapMovement};
///
/// let instance = InstanceSpec::paper_normal()?.generate(2)?;
/// let evaluator = Evaluator::paper_default(&instance);
/// let movement = SwapMovement::new(&instance, SwapConfig::default());
/// let climber = HillClimb::new(&evaluator, Box::new(movement), HillClimbConfig {
///     max_phases: 5,
///     ..HillClimbConfig::default()
/// });
/// let mut rng = rng_from_seed(1);
/// let initial = instance.random_placement(&mut rng);
/// let outcome = climber.run(&initial, &mut rng)?;
/// assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct HillClimb<'e, 'i> {
    evaluator: &'e Evaluator<'i>,
    movement: Box<dyn Movement>,
    config: HillClimbConfig,
}

/// Result of a hill-climb run (same shape as neighborhood search).
#[derive(Debug, Clone, PartialEq)]
pub struct HillClimbOutcome {
    /// Best placement found.
    pub best_placement: Placement,
    /// Evaluation of the best placement.
    pub best_evaluation: Evaluation,
    /// Evaluation of the initial placement.
    pub initial_evaluation: Evaluation,
    /// Per-phase history.
    pub trace: SearchTrace,
}

impl<'e, 'i> HillClimb<'e, 'i> {
    /// Creates a hill climber.
    pub fn new(
        evaluator: &'e Evaluator<'i>,
        movement: Box<dyn Movement>,
        config: HillClimbConfig,
    ) -> Self {
        HillClimb {
            evaluator,
            movement,
            config,
        }
    }

    /// Runs from `initial`.
    ///
    /// # Errors
    ///
    /// Propagates placement validation for `initial`.
    pub fn run(
        &self,
        initial: &Placement,
        rng: &mut dyn RngCore,
    ) -> Result<HillClimbOutcome, ModelError> {
        let mut topo = self.evaluator.topology(initial)?;
        Ok(self.run_with_topology(&mut topo, rng))
    }

    /// Runs over a caller-provided topology (its current state is the
    /// initial solution), reusing the topology's scratch buffers; see
    /// [`NeighborhoodSearch::run_with_topology`](crate::search::NeighborhoodSearch::run_with_topology).
    pub fn run_with_topology(
        &self,
        topo: &mut WmnTopology,
        rng: &mut dyn RngCore,
    ) -> HillClimbOutcome {
        self.run_with_topology_recorded(topo, rng, &mut NoopRecorder)
    }

    /// Like [`run_with_topology`](Self::run_with_topology), additionally
    /// emitting run telemetry to `recorder`: `search.hc.*` move counters
    /// plus the engine work-counter delta attributable to this run. With a
    /// disabled recorder the extra cost is one branch per run.
    pub fn run_with_topology_recorded(
        &self,
        topo: &mut WmnTopology,
        rng: &mut dyn RngCore,
        recorder: &mut dyn Recorder,
    ) -> HillClimbOutcome {
        let engine_before = recorder.enabled().then(|| topo.engine_stats());
        let initial_evaluation = self.evaluator.evaluate_topology(topo);
        let mut current = initial_evaluation;
        let mut trace = SearchTrace::new();
        let mut stale_phases = 0usize;
        let mut proposed = 0u64;

        for phase in 1..=self.config.max_phases {
            let mut accepted = false;
            for _ in 0..self.config.samples_per_phase {
                let action = self.movement.propose(topo, rng);
                let undo = action.apply(topo);
                let eval = self.evaluator.evaluate_topology(topo);
                proposed += 1;
                if eval.fitness > current.fitness {
                    current = eval;
                    accepted = true;
                    break; // first improvement: keep the applied move
                }
                undo.undo(topo);
            }
            trace.push(PhaseRecord::new(
                phase,
                current.fitness,
                current.giant_size(),
                current.covered_clients(),
                accepted,
            ));
            stale_phases = if accepted { 0 } else { stale_phases + 1 };
            if stale_phases >= self.config.patience {
                break;
            }
        }

        if let Some(before) = engine_before {
            let delta = topo.engine_stats().delta_since(&before);
            let mut scope = obs_phase(recorder, "search");
            let mut driver = obs_phase(&mut scope, "hc");
            driver.counter("search.hc.phases", trace.len() as u64);
            {
                let mut propose = obs_phase(&mut driver, "propose");
                propose.counter("search.hc.moves_proposed", proposed);
            }
            {
                let mut apply = obs_phase(&mut driver, "apply");
                delta.record_counters_staged(&mut apply);
            }
            {
                let mut evaluate = obs_phase(&mut driver, "evaluate");
                evaluate.counter("search.hc.moves_accepted", trace.accepted_count() as u64);
            }
        }

        HillClimbOutcome {
            best_placement: topo.placement(),
            best_evaluation: current,
            initial_evaluation,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::{RandomMovement, SwapConfig, SwapMovement};
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    #[test]
    fn never_degrades_and_validates() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let climber = HillClimb::new(
            &evaluator,
            Box::new(movement),
            HillClimbConfig {
                max_phases: 12,
                ..HillClimbConfig::default()
            },
        );
        let mut rng = rng_from_seed(2);
        let initial = instance.random_placement(&mut rng);
        let outcome = climber.run(&initial, &mut rng).unwrap();
        assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
        assert!(instance.validate_placement(&outcome.best_placement).is_ok());
    }

    #[test]
    fn patience_stops_stalled_runs() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(3).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        // A movement that can never improve: relocate router 0 onto its own
        // position — fitness never rises, so patience must trigger.
        #[derive(Debug)]
        struct NoOpMovement;
        impl Movement for NoOpMovement {
            fn name(&self) -> &'static str {
                "NoOp"
            }
            fn propose(
                &self,
                topo: &wmn_graph::topology::WmnTopology,
                _rng: &mut dyn RngCore,
            ) -> crate::movement::MoveAction {
                crate::movement::MoveAction::Relocate {
                    router: wmn_model::RouterId(0),
                    to: topo.position(wmn_model::RouterId(0)),
                }
            }
        }
        let climber = HillClimb::new(
            &evaluator,
            Box::new(NoOpMovement),
            HillClimbConfig {
                max_phases: 100,
                samples_per_phase: 2,
                patience: 3,
            },
        );
        let mut rng = rng_from_seed(4);
        let initial = instance.random_placement(&mut rng);
        let outcome = climber.run(&initial, &mut rng).unwrap();
        assert_eq!(
            outcome.trace.len(),
            3,
            "stops after `patience` stale phases"
        );
        assert_eq!(outcome.trace.accepted_count(), 0);
    }

    #[test]
    fn random_movement_climbs_too() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(5).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let climber = HillClimb::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            HillClimbConfig {
                max_phases: 15,
                samples_per_phase: 16,
                patience: 15,
            },
        );
        let mut rng = rng_from_seed(6);
        let initial = instance.random_placement(&mut rng);
        let outcome = climber.run(&initial, &mut rng).unwrap();
        assert!(outcome.best_evaluation.fitness > outcome.initial_evaluation.fitness);
    }
}
