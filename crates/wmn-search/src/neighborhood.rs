//! Best-neighbor selection (paper Algorithm 2).
//!
//! "The exploration of the neighborhood can be done in different ways. For
//! instance, we can systematically generate all movements … or, in case of
//! large neighborhoods, just a pre-fixed number of movements is generated."
//! Positions are continuous here, so the neighborhood is infinite and the
//! **sampled budget** variant is the operational one.

use crate::movement::{MoveAction, Movement};
use rand::RngCore;
use wmn_graph::topology::WmnTopology;
use wmn_metrics::evaluator::{Evaluation, Evaluator};

/// How many neighbors one phase examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorationBudget(usize);

impl ExplorationBudget {
    /// A budget of `n` sampled movements per phase.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sampled(n: usize) -> Self {
        assert!(n > 0, "exploration budget must be positive");
        ExplorationBudget(n)
    }

    /// The per-phase sample count.
    pub fn count(&self) -> usize {
        self.0
    }
}

impl Default for ExplorationBudget {
    /// 32 sampled neighbors per phase (the Figure 4 configuration).
    fn default() -> Self {
        ExplorationBudget(32)
    }
}

/// The best neighbor found in one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestNeighbor {
    /// The movement producing the neighbor.
    pub action: MoveAction,
    /// The neighbor's evaluation.
    pub evaluation: Evaluation,
}

/// Examines `budget` sampled movements of `movement` around the current
/// topology and returns the best neighbor (Algorithm 2), or `None` if every
/// proposal degenerated into a no-op evaluation failure (cannot happen with
/// the built-in movements, but the contract stays honest for custom ones).
///
/// The topology is used as scratch space — each candidate is applied,
/// evaluated, and undone — and is guaranteed to be back in its original
/// state on return.
pub fn best_neighbor(
    topo: &mut WmnTopology,
    evaluator: &Evaluator<'_>,
    movement: &dyn Movement,
    budget: ExplorationBudget,
    rng: &mut dyn RngCore,
) -> Option<BestNeighbor> {
    let mut best: Option<BestNeighbor> = None;
    for _ in 0..budget.count() {
        let action = movement.propose(topo, rng);
        let undo = action.apply(topo);
        let evaluation = evaluator.evaluate_topology(topo);
        undo.undo(topo);
        let better = match &best {
            None => true,
            Some(b) => evaluation.fitness > b.evaluation.fitness,
        };
        if better {
            best = Some(BestNeighbor { action, evaluation });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::{RandomMovement, SwapConfig, SwapMovement};
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    #[test]
    fn budget_validation() {
        assert_eq!(ExplorationBudget::sampled(5).count(), 5);
        assert_eq!(ExplorationBudget::default().count(), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let _ = ExplorationBudget::sampled(0);
    }

    #[test]
    fn scratch_topology_is_restored() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(2).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let mut rng = rng_from_seed(3);
        let placement = instance.random_placement(&mut rng);
        let mut topo = evaluator.topology(&placement).unwrap();
        let snapshot = (topo.giant_size(), topo.covered_count(), topo.placement());

        let movement = RandomMovement::new(&instance);
        let _ = best_neighbor(
            &mut topo,
            &evaluator,
            &movement,
            ExplorationBudget::sampled(16),
            &mut rng,
        );
        assert_eq!(
            (topo.giant_size(), topo.covered_count(), topo.placement()),
            snapshot
        );
    }

    #[test]
    fn best_neighbor_is_at_least_as_good_as_any_sample() {
        // With a single-candidate budget the result equals that candidate;
        // with a larger budget the best must dominate a one-sample rerun
        // in expectation. Deterministically: re-running with the same seed
        // and the same budget returns the same best.
        let instance = InstanceSpec::paper_normal().unwrap().generate(5).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let mut rng_a = rng_from_seed(7);
        let mut rng_b = rng_from_seed(7);
        let placement = instance.random_placement(&mut rng_from_seed(1));
        let mut topo_a = evaluator.topology(&placement).unwrap();
        let mut topo_b = evaluator.topology(&placement).unwrap();
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let a = best_neighbor(
            &mut topo_a,
            &evaluator,
            &movement,
            ExplorationBudget::sampled(8),
            &mut rng_a,
        )
        .unwrap();
        let b = best_neighbor(
            &mut topo_b,
            &evaluator,
            &movement,
            ExplorationBudget::sampled(8),
            &mut rng_b,
        )
        .unwrap();
        assert_eq!(a, b, "best-neighbor must be deterministic per seed");
    }

    #[test]
    fn larger_budget_never_returns_worse_best() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(9).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let placement = instance.random_placement(&mut rng_from_seed(2));
        let movement = RandomMovement::new(&instance);
        // Same RNG stream: the 32-budget pass examines a superset of the
        // 8-budget pass's candidates.
        let mut topo = evaluator.topology(&placement).unwrap();
        let small = best_neighbor(
            &mut topo,
            &evaluator,
            &movement,
            ExplorationBudget::sampled(8),
            &mut rng_from_seed(42),
        )
        .unwrap();
        let large = best_neighbor(
            &mut topo,
            &evaluator,
            &movement,
            ExplorationBudget::sampled(32),
            &mut rng_from_seed(42),
        )
        .unwrap();
        assert!(large.evaluation.fitness >= small.evaluation.fitness);
    }
}
