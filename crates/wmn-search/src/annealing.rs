//! Simulated annealing over placements.
//!
//! Extension beyond the paper (listed there as future work on "full
//! featured local search methods"): a Metropolis acceptance rule lets the
//! search escape the local optima that strict best-neighbor search
//! (Algorithm 1) stops at. Cooling is geometric.

use crate::movement::Movement;
use crate::trace::{PhaseRecord, SearchTrace};
use rand::{Rng, RngCore};
use wmn_graph::topology::WmnTopology;
use wmn_metrics::evaluator::{Evaluation, Evaluator};
use wmn_model::placement::Placement;
use wmn_model::ModelError;
use wmn_obs::phase as obs_phase;
use wmn_obs::{NoopRecorder, Recorder};

/// Configuration for [`SimulatedAnnealing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingConfig {
    /// Starting temperature (in fitness units; the default suits the
    /// `[0, 1]`-normalized weighted fitness).
    pub initial_temperature: f64,
    /// Geometric cooling factor per phase, in `(0, 1)`.
    pub cooling: f64,
    /// Moves attempted per temperature level (phase).
    pub moves_per_phase: usize,
    /// Number of phases (temperature levels).
    pub phases: usize,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            initial_temperature: 0.05,
            cooling: 0.92,
            moves_per_phase: 32,
            phases: 61,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingOutcome {
    /// Best placement encountered anywhere in the run.
    pub best_placement: Placement,
    /// Evaluation of the best placement.
    pub best_evaluation: Evaluation,
    /// Evaluation of the initial placement.
    pub initial_evaluation: Evaluation,
    /// Per-phase history (current — not best — solution per phase).
    pub trace: SearchTrace,
    /// Total accepted moves (including uphill-in-cost acceptances).
    pub accepted_moves: usize,
}

/// Simulated annealing bound to an evaluator and a movement.
///
/// # Examples
///
/// ```
/// use wmn_metrics::Evaluator;
/// use wmn_model::prelude::*;
/// use wmn_search::annealing::{AnnealingConfig, SimulatedAnnealing};
/// use wmn_search::movement::RandomMovement;
///
/// let instance = InstanceSpec::paper_normal()?.generate(4)?;
/// let evaluator = Evaluator::paper_default(&instance);
/// let sa = SimulatedAnnealing::new(
///     &evaluator,
///     Box::new(RandomMovement::new(&instance)),
///     AnnealingConfig { phases: 5, moves_per_phase: 8, ..AnnealingConfig::default() },
/// );
/// let mut rng = rng_from_seed(9);
/// let initial = instance.random_placement(&mut rng);
/// let outcome = sa.run(&initial, &mut rng)?;
/// assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct SimulatedAnnealing<'e, 'i> {
    evaluator: &'e Evaluator<'i>,
    movement: Box<dyn Movement>,
    config: AnnealingConfig,
}

impl<'e, 'i> SimulatedAnnealing<'e, 'i> {
    /// Creates an annealer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cooling < 1` and `initial_temperature > 0`.
    pub fn new(
        evaluator: &'e Evaluator<'i>,
        movement: Box<dyn Movement>,
        config: AnnealingConfig,
    ) -> Self {
        assert!(
            config.cooling > 0.0 && config.cooling < 1.0,
            "cooling factor must be in (0, 1), got {}",
            config.cooling
        );
        assert!(
            config.initial_temperature > 0.0,
            "initial temperature must be positive"
        );
        SimulatedAnnealing {
            evaluator,
            movement,
            config,
        }
    }

    /// Runs from `initial`.
    ///
    /// # Errors
    ///
    /// Propagates placement validation for `initial`.
    pub fn run(
        &self,
        initial: &Placement,
        rng: &mut dyn RngCore,
    ) -> Result<AnnealingOutcome, ModelError> {
        let mut topo = self.evaluator.topology(initial)?;
        Ok(self.run_with_topology(&mut topo, rng))
    }

    /// Runs over a caller-provided topology (its current state is the
    /// initial solution), reusing the topology's scratch buffers; see
    /// [`NeighborhoodSearch::run_with_topology`](crate::search::NeighborhoodSearch::run_with_topology).
    pub fn run_with_topology(
        &self,
        topo: &mut WmnTopology,
        rng: &mut dyn RngCore,
    ) -> AnnealingOutcome {
        self.run_with_topology_recorded(topo, rng, &mut NoopRecorder)
    }

    /// Like [`run_with_topology`](Self::run_with_topology), additionally
    /// emitting run telemetry to `recorder`: `search.sa.*` move counters
    /// plus the engine work-counter delta attributable to this run. With a
    /// disabled recorder the extra cost is one branch per run.
    pub fn run_with_topology_recorded(
        &self,
        topo: &mut WmnTopology,
        rng: &mut dyn RngCore,
        recorder: &mut dyn Recorder,
    ) -> AnnealingOutcome {
        let engine_before = recorder.enabled().then(|| topo.engine_stats());
        let initial_evaluation = self.evaluator.evaluate_topology(topo);
        let mut current = initial_evaluation;
        let mut best_evaluation = initial_evaluation;
        let mut best_placement = topo.placement();
        let mut trace = SearchTrace::new();
        let mut temperature = self.config.initial_temperature;
        let mut accepted_moves = 0usize;

        for phase in 1..=self.config.phases {
            let mut phase_accepted = false;
            for _ in 0..self.config.moves_per_phase {
                let action = self.movement.propose(topo, rng);
                let undo = action.apply(topo);
                let eval = self.evaluator.evaluate_topology(topo);
                let delta = eval.fitness - current.fitness;
                let accept = delta >= 0.0 || rng.gen::<f64>() < (delta / temperature).exp();
                if accept {
                    current = eval;
                    accepted_moves += 1;
                    phase_accepted = true;
                    if current.fitness > best_evaluation.fitness {
                        best_evaluation = current;
                        best_placement = topo.placement();
                    }
                } else {
                    undo.undo(topo);
                }
            }
            trace.push(PhaseRecord::new(
                phase,
                current.fitness,
                current.giant_size(),
                current.covered_clients(),
                phase_accepted,
            ));
            temperature *= self.config.cooling;
        }

        if let Some(before) = engine_before {
            let delta = topo.engine_stats().delta_since(&before);
            let mut scope = obs_phase(recorder, "search");
            let mut driver = obs_phase(&mut scope, "sa");
            driver.counter("search.sa.phases", trace.len() as u64);
            {
                let mut propose = obs_phase(&mut driver, "propose");
                propose.counter(
                    "search.sa.moves_proposed",
                    (self.config.phases * self.config.moves_per_phase) as u64,
                );
            }
            {
                let mut apply = obs_phase(&mut driver, "apply");
                delta.record_counters_staged(&mut apply);
            }
            {
                let mut evaluate = obs_phase(&mut driver, "evaluate");
                evaluate.counter("search.sa.moves_accepted", accepted_moves as u64);
            }
        }

        AnnealingOutcome {
            best_placement,
            best_evaluation,
            initial_evaluation,
            trace,
            accepted_moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::{RandomMovement, SwapConfig, SwapMovement};
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn quick() -> AnnealingConfig {
        AnnealingConfig {
            phases: 12,
            moves_per_phase: 12,
            ..AnnealingConfig::default()
        }
    }

    #[test]
    fn best_never_below_initial() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let sa = SimulatedAnnealing::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            quick(),
        );
        let mut rng = rng_from_seed(2);
        let initial = instance.random_placement(&mut rng);
        let outcome = sa.run(&initial, &mut rng).unwrap();
        assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
        assert!(instance.validate_placement(&outcome.best_placement).is_ok());
        assert_eq!(outcome.trace.len(), 12);
    }

    #[test]
    fn accepts_some_downhill_moves_at_high_temperature() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(3).unwrap();
        // Use the normalized weighted fitness so temperature units are
        // comparable to fitness deltas (the lexicographic scalarization has
        // deltas in the hundreds).
        let evaluator = Evaluator::new(
            &instance,
            wmn_graph::topology::TopologyConfig::paper_default(),
            wmn_metrics::fitness::FitnessFunction::weighted(0.7).expect("valid alpha"),
        );
        let sa = SimulatedAnnealing::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            AnnealingConfig {
                initial_temperature: 10.0, // essentially accept-everything
                cooling: 0.99,
                moves_per_phase: 32,
                phases: 4,
            },
        );
        let mut rng = rng_from_seed(4);
        let initial = instance.random_placement(&mut rng);
        let outcome = sa.run(&initial, &mut rng).unwrap();
        // At T=10 with fitness deltas << 1, acceptance ratio approaches 1.
        assert!(
            outcome.accepted_moves as f64 >= 0.9 * (4.0 * 32.0),
            "hot annealer should accept nearly everything, got {}",
            outcome.accepted_moves
        );
    }

    #[test]
    fn swap_movement_anneals_to_good_solutions() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(5).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let sa = SimulatedAnnealing::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            AnnealingConfig {
                phases: 25,
                moves_per_phase: 16,
                ..AnnealingConfig::default()
            },
        );
        let mut rng = rng_from_seed(6);
        let initial = instance.random_placement(&mut rng);
        let outcome = sa.run(&initial, &mut rng).unwrap();
        assert!(
            outcome.best_evaluation.giant_size() >= outcome.initial_evaluation.giant_size() + 8,
            "annealed swap should grow the giant component: {} -> {}",
            outcome.initial_evaluation.giant_size(),
            outcome.best_evaluation.giant_size()
        );
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn rejects_bad_cooling() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let _ = SimulatedAnnealing::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            AnnealingConfig {
                cooling: 1.5,
                ..AnnealingConfig::default()
            },
        );
    }
}
