//! Tabu search over placements.
//!
//! Extension beyond the paper: the search always moves to the best
//! non-tabu neighbor — even when it is worse than the current solution —
//! while a short-term memory (the tabu list of recently touched routers)
//! prevents cycling. An aspiration criterion overrides the tabu when a
//! move would beat the best solution ever seen.

use crate::movement::{MoveAction, Movement};
use crate::trace::{PhaseRecord, SearchTrace};
use rand::RngCore;
use std::collections::VecDeque;
use wmn_graph::topology::WmnTopology;
use wmn_metrics::evaluator::{Evaluation, Evaluator};
use wmn_model::node::RouterId;
use wmn_model::placement::Placement;
use wmn_model::ModelError;
use wmn_obs::phase as obs_phase;
use wmn_obs::{NoopRecorder, Recorder};

/// Configuration for [`TabuSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabuConfig {
    /// Tabu tenure: how many phases a touched router stays tabu.
    pub tenure: usize,
    /// Candidate moves sampled per phase.
    pub candidates_per_phase: usize,
    /// Number of phases.
    pub phases: usize,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            tenure: 8,
            candidates_per_phase: 32,
            phases: 61,
        }
    }
}

/// Result of a tabu search run.
#[derive(Debug, Clone, PartialEq)]
pub struct TabuOutcome {
    /// Best placement encountered anywhere in the run.
    pub best_placement: Placement,
    /// Evaluation of the best placement.
    pub best_evaluation: Evaluation,
    /// Evaluation of the initial placement.
    pub initial_evaluation: Evaluation,
    /// Per-phase history (current solution per phase).
    pub trace: SearchTrace,
    /// Phases where the aspiration criterion overrode a tabu.
    pub aspirations: usize,
}

/// Tabu search bound to an evaluator and a movement.
///
/// # Examples
///
/// ```
/// use wmn_metrics::Evaluator;
/// use wmn_model::prelude::*;
/// use wmn_search::movement::{SwapConfig, SwapMovement};
/// use wmn_search::tabu::{TabuConfig, TabuSearch};
///
/// let instance = InstanceSpec::paper_normal()?.generate(8)?;
/// let evaluator = Evaluator::paper_default(&instance);
/// let tabu = TabuSearch::new(
///     &evaluator,
///     Box::new(SwapMovement::new(&instance, SwapConfig::default())),
///     TabuConfig { phases: 5, ..TabuConfig::default() },
/// );
/// let mut rng = rng_from_seed(3);
/// let initial = instance.random_placement(&mut rng);
/// let outcome = tabu.run(&initial, &mut rng)?;
/// assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct TabuSearch<'e, 'i> {
    evaluator: &'e Evaluator<'i>,
    movement: Box<dyn Movement>,
    config: TabuConfig,
}

fn touched_routers(action: &MoveAction) -> [Option<RouterId>; 2] {
    match *action {
        MoveAction::Relocate { router, .. } => [Some(router), None],
        MoveAction::Swap { a, b } => [Some(a), Some(b)],
    }
}

impl<'e, 'i> TabuSearch<'e, 'i> {
    /// Creates a tabu search.
    pub fn new(
        evaluator: &'e Evaluator<'i>,
        movement: Box<dyn Movement>,
        config: TabuConfig,
    ) -> Self {
        TabuSearch {
            evaluator,
            movement,
            config,
        }
    }

    /// Runs from `initial`.
    ///
    /// # Errors
    ///
    /// Propagates placement validation for `initial`.
    pub fn run(
        &self,
        initial: &Placement,
        rng: &mut dyn RngCore,
    ) -> Result<TabuOutcome, ModelError> {
        let mut topo = self.evaluator.topology(initial)?;
        Ok(self.run_with_topology(&mut topo, rng))
    }

    /// Runs over a caller-provided topology (its current state is the
    /// initial solution), reusing the topology's scratch buffers; see
    /// [`NeighborhoodSearch::run_with_topology`](crate::search::NeighborhoodSearch::run_with_topology).
    pub fn run_with_topology(&self, topo: &mut WmnTopology, rng: &mut dyn RngCore) -> TabuOutcome {
        self.run_with_topology_recorded(topo, rng, &mut NoopRecorder)
    }

    /// Like [`run_with_topology`](Self::run_with_topology), additionally
    /// emitting run telemetry to `recorder`: `search.tabu.*` move counters
    /// plus the engine work-counter delta attributable to this run. With a
    /// disabled recorder the extra cost is one branch per run.
    pub fn run_with_topology_recorded(
        &self,
        topo: &mut WmnTopology,
        rng: &mut dyn RngCore,
        recorder: &mut dyn Recorder,
    ) -> TabuOutcome {
        let engine_before = recorder.enabled().then(|| topo.engine_stats());
        let initial_evaluation = self.evaluator.evaluate_topology(topo);
        let mut current = initial_evaluation;
        let mut best_evaluation = initial_evaluation;
        let mut best_placement = topo.placement();
        let mut trace = SearchTrace::new();
        // Tabu list: router -> phase until which it is tabu, kept as a FIFO
        // of (router, expiry) with a parallel bitmap for O(1) checks.
        let mut tabu_until = vec![0usize; topo.router_count()];
        let mut fifo: VecDeque<RouterId> = VecDeque::new();
        let mut aspirations = 0usize;

        for phase in 1..=self.config.phases {
            let mut chosen: Option<(MoveAction, Evaluation, bool)> = None;
            for _ in 0..self.config.candidates_per_phase {
                let action = self.movement.propose(topo, rng);
                let undo = action.apply(topo);
                let eval = self.evaluator.evaluate_topology(topo);
                undo.undo(topo);

                let is_tabu = touched_routers(&action)
                    .into_iter()
                    .flatten()
                    .any(|r| tabu_until[r.index()] >= phase);
                let aspires = eval.fitness > best_evaluation.fitness;
                if is_tabu && !aspires {
                    continue;
                }
                let better = match &chosen {
                    None => true,
                    Some((_, e, _)) => eval.fitness > e.fitness,
                };
                if better {
                    chosen = Some((action, eval, is_tabu));
                }
            }

            let accepted = if let Some((action, eval, was_tabu)) = chosen {
                let _ = action.apply(topo);
                current = eval;
                if was_tabu {
                    aspirations += 1;
                }
                for r in touched_routers(&action).into_iter().flatten() {
                    tabu_until[r.index()] = phase + self.config.tenure;
                    fifo.push_back(r);
                    if fifo.len() > 4 * self.config.tenure.max(1) {
                        fifo.pop_front();
                    }
                }
                if current.fitness > best_evaluation.fitness {
                    best_evaluation = current;
                    best_placement = topo.placement();
                }
                true
            } else {
                false
            };

            trace.push(PhaseRecord::new(
                phase,
                current.fitness,
                current.giant_size(),
                current.covered_clients(),
                accepted,
            ));
        }

        if let Some(before) = engine_before {
            let delta = topo.engine_stats().delta_since(&before);
            let mut scope = obs_phase(recorder, "search");
            let mut driver = obs_phase(&mut scope, "tabu");
            driver.counter("search.tabu.phases", trace.len() as u64);
            {
                let mut propose = obs_phase(&mut driver, "propose");
                propose.counter(
                    "search.tabu.moves_proposed",
                    (self.config.phases * self.config.candidates_per_phase) as u64,
                );
            }
            {
                let mut apply = obs_phase(&mut driver, "apply");
                delta.record_counters_staged(&mut apply);
            }
            {
                let mut evaluate = obs_phase(&mut driver, "evaluate");
                evaluate.counter("search.tabu.moves_accepted", trace.accepted_count() as u64);
                evaluate.counter("search.tabu.aspirations", aspirations as u64);
            }
        }

        TabuOutcome {
            best_placement,
            best_evaluation,
            initial_evaluation,
            trace,
            aspirations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::{RandomMovement, SwapConfig, SwapMovement};
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    #[test]
    fn best_never_below_initial() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(1).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let tabu = TabuSearch::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            TabuConfig {
                phases: 15,
                ..TabuConfig::default()
            },
        );
        let mut rng = rng_from_seed(2);
        let initial = instance.random_placement(&mut rng);
        let outcome = tabu.run(&initial, &mut rng).unwrap();
        assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
        assert!(instance.validate_placement(&outcome.best_placement).is_ok());
        assert_eq!(outcome.trace.len(), 15);
    }

    #[test]
    fn improves_giant_component_with_swap_movement() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(3).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let tabu = TabuSearch::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            TabuConfig {
                phases: 25,
                candidates_per_phase: 16,
                ..TabuConfig::default()
            },
        );
        let mut rng = rng_from_seed(4);
        let initial = instance.random_placement(&mut rng);
        let outcome = tabu.run(&initial, &mut rng).unwrap();
        assert!(
            outcome.best_evaluation.giant_size() >= outcome.initial_evaluation.giant_size() + 8
        );
    }

    #[test]
    fn moves_even_when_no_improvement_exists() {
        // Unlike Algorithm 1's strict mode, tabu keeps moving: over many
        // phases the number of accepted phases should equal the phase count
        // (random relocations of distinct routers are almost never all tabu).
        let instance = InstanceSpec::paper_normal().unwrap().generate(5).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let tabu = TabuSearch::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            TabuConfig {
                phases: 10,
                tenure: 2,
                candidates_per_phase: 16,
            },
        );
        let mut rng = rng_from_seed(6);
        let initial = instance.random_placement(&mut rng);
        let outcome = tabu.run(&initial, &mut rng).unwrap();
        assert_eq!(outcome.trace.accepted_count(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let instance = InstanceSpec::paper_normal().unwrap().generate(7).unwrap();
        let evaluator = Evaluator::paper_default(&instance);
        let initial = instance.random_placement(&mut rng_from_seed(1));
        let run = |seed| {
            let tabu = TabuSearch::new(
                &evaluator,
                Box::new(SwapMovement::new(&instance, SwapConfig::default())),
                TabuConfig {
                    phases: 8,
                    ..TabuConfig::default()
                },
            );
            tabu.run(&initial, &mut rng_from_seed(seed)).unwrap()
        };
        assert_eq!(run(9).trace, run(9).trace);
    }
}
