//! Neighborhood search for WMN router placement (paper §4).
//!
//! * [`movement`] — the paper's movement types: [`SwapMovement`]
//!   (Algorithm 3: weakest router of the densest zone ⟷ strongest router of
//!   the sparsest zone) and the [`RandomMovement`] baseline.
//! * [`neighborhood`] — best-neighbor selection (Algorithm 2) under a
//!   sampled exploration budget.
//! * [`search`] — the phase-loop driver (Algorithm 1), with strict
//!   (paper) and fixed-length (Figure 4) stopping modes.
//! * [`trace`] — per-phase history (the data behind Figure 4).
//! * Extensions (the paper's "full featured local search" future work):
//!   [`hill_climb`], [`annealing`], [`tabu`].
//!
//! # Quick start
//!
//! ```
//! use wmn_metrics::Evaluator;
//! use wmn_model::prelude::*;
//! use wmn_search::prelude::*;
//!
//! let instance = InstanceSpec::paper_normal()?.generate(1)?;
//! let evaluator = Evaluator::paper_default(&instance);
//!
//! let movement = SwapMovement::new(&instance, SwapConfig::default());
//! let config = SearchConfig {
//!     budget: ExplorationBudget::sampled(16),
//!     stopping: StoppingCondition::fixed_phases(10),
//! };
//! let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), config);
//!
//! let mut rng = rng_from_seed(7);
//! let initial = instance.random_placement(&mut rng);
//! let outcome = search.run(&initial, &mut rng)?;
//! println!(
//!     "giant component: {} -> {}",
//!     outcome.initial_evaluation.giant_size(),
//!     outcome.best_evaluation.giant_size()
//! );
//! # Ok::<(), wmn_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod annealing;
pub mod hill_climb;
pub mod movement;
pub mod neighborhood;
pub mod search;
pub mod tabu;
pub mod trace;

pub use movement::{MoveAction, Movement, RandomMovement, SwapConfig, SwapMovement, UndoAction};
pub use neighborhood::{best_neighbor, BestNeighbor, ExplorationBudget};
pub use search::{NeighborhoodSearch, SearchConfig, SearchOutcome, StoppingCondition};
pub use trace::{PhaseRecord, SearchTrace};
pub use wmn_metrics::stats::ProgressPoint;

/// Convenient glob import of the search toolkit.
pub mod prelude {
    pub use crate::annealing::{AnnealingConfig, SimulatedAnnealing};
    pub use crate::hill_climb::{HillClimb, HillClimbConfig};
    pub use crate::movement::{
        MoveAction, Movement, RandomMovement, SwapConfig, SwapMovement, UndoAction,
    };
    pub use crate::neighborhood::{best_neighbor, BestNeighbor, ExplorationBudget};
    pub use crate::search::{NeighborhoodSearch, SearchConfig, SearchOutcome, StoppingCondition};
    pub use crate::tabu::{TabuConfig, TabuSearch};
    pub use crate::trace::{PhaseRecord, SearchTrace};
    pub use wmn_metrics::stats::ProgressPoint;
}
