//! The neighborhood search driver (paper Algorithm 1).
//!
//! Starting from an initial solution (typically produced by an ad hoc
//! method), each **phase** computes the best neighbor under the configured
//! movement and moves to it if it improves the current solution. The paper
//! variant stops at the first non-improving phase; for figure generation
//! the driver can also run a fixed number of phases, recording the
//! evolution of the giant component ([`SearchTrace`]).

use crate::movement::Movement;
use crate::neighborhood::{best_neighbor, ExplorationBudget};
use crate::trace::{PhaseRecord, SearchTrace};
use rand::RngCore;
use wmn_graph::topology::WmnTopology;
use wmn_metrics::evaluator::{Evaluation, Evaluator};
use wmn_model::placement::Placement;
use wmn_model::ModelError;
use wmn_obs::phase as obs_phase;
use wmn_obs::{NoopRecorder, Recorder};

/// Stopping behaviour of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoppingCondition {
    /// Hard cap on the number of phases.
    pub max_phases: usize,
    /// Stop at the first phase whose best neighbor does not improve the
    /// current solution (the literal Algorithm 1 behaviour). When `false`,
    /// non-improving phases are recorded (flat trace segments) and the
    /// search continues until `max_phases` — the Figure 4 mode.
    pub stop_on_first_non_improving: bool,
}

impl StoppingCondition {
    /// The paper's Algorithm 1: stop when the best neighbor stops
    /// improving, with a safety cap.
    pub fn paper_strict(max_phases: usize) -> Self {
        StoppingCondition {
            max_phases,
            stop_on_first_non_improving: true,
        }
    }

    /// Fixed-length run (Figure 4: 61 phases).
    pub fn fixed_phases(max_phases: usize) -> Self {
        StoppingCondition {
            max_phases,
            stop_on_first_non_improving: false,
        }
    }
}

impl Default for StoppingCondition {
    /// 61 fixed phases — the Figure 4 configuration.
    fn default() -> Self {
        StoppingCondition::fixed_phases(61)
    }
}

/// Configuration of a neighborhood search run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchConfig {
    /// Neighbors examined per phase.
    pub budget: ExplorationBudget,
    /// When to stop.
    pub stopping: StoppingCondition,
}

/// Result of a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Best placement found.
    pub best_placement: Placement,
    /// Evaluation of the best placement.
    pub best_evaluation: Evaluation,
    /// Evaluation of the initial placement (for improvement reporting).
    pub initial_evaluation: Evaluation,
    /// Per-phase history.
    pub trace: SearchTrace,
}

impl SearchOutcome {
    /// Fitness improvement over the initial solution.
    pub fn improvement(&self) -> f64 {
        self.best_evaluation.fitness - self.initial_evaluation.fitness
    }
}

/// Neighborhood search bound to an evaluator and a movement type.
///
/// # Examples
///
/// ```
/// use wmn_metrics::Evaluator;
/// use wmn_model::prelude::*;
/// use wmn_search::movement::{SwapConfig, SwapMovement};
/// use wmn_search::neighborhood::ExplorationBudget;
/// use wmn_search::search::{NeighborhoodSearch, SearchConfig, StoppingCondition};
///
/// let instance = InstanceSpec::paper_normal()?.generate(1)?;
/// let evaluator = Evaluator::paper_default(&instance);
/// let movement = SwapMovement::new(&instance, SwapConfig::default());
/// let config = SearchConfig {
///     budget: ExplorationBudget::sampled(8),
///     stopping: StoppingCondition::fixed_phases(5),
/// };
/// let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), config);
///
/// let mut rng = rng_from_seed(3);
/// let initial = instance.random_placement(&mut rng);
/// let outcome = search.run(&initial, &mut rng)?;
/// assert!(outcome.best_evaluation.fitness >= outcome.initial_evaluation.fitness);
/// # Ok::<(), wmn_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct NeighborhoodSearch<'e, 'i> {
    evaluator: &'e Evaluator<'i>,
    movement: Box<dyn Movement>,
    config: SearchConfig,
}

impl<'e, 'i> NeighborhoodSearch<'e, 'i> {
    /// Creates a search with the given movement and configuration.
    pub fn new(
        evaluator: &'e Evaluator<'i>,
        movement: Box<dyn Movement>,
        config: SearchConfig,
    ) -> Self {
        NeighborhoodSearch {
            evaluator,
            movement,
            config,
        }
    }

    /// The movement's name (for figure legends).
    pub fn movement_name(&self) -> &'static str {
        self.movement.name()
    }

    /// The active configuration.
    pub fn config(&self) -> SearchConfig {
        self.config
    }

    /// Runs the search from `initial`.
    ///
    /// # Errors
    ///
    /// Propagates placement validation for `initial`.
    pub fn run(
        &self,
        initial: &Placement,
        rng: &mut dyn RngCore,
    ) -> Result<SearchOutcome, ModelError> {
        let mut topo = self.evaluator.topology(initial)?;
        Ok(self.run_with_topology(&mut topo, rng))
    }

    /// Runs the search over a caller-provided topology (its current state
    /// is the initial solution). Lets callers reuse one topology — and its
    /// internal scratch buffers — across many runs, or pin the search to
    /// the full-rebuild reference engine via
    /// [`WmnTopology::set_rebuild_mode`]; results are identical to
    /// [`NeighborhoodSearch::run`] either way. The topology is left at the
    /// search's final *current* state.
    pub fn run_with_topology(
        &self,
        topo: &mut WmnTopology,
        rng: &mut dyn RngCore,
    ) -> SearchOutcome {
        self.run_with_topology_recorded(topo, rng, &mut NoopRecorder)
    }

    /// Like [`run_with_topology`](Self::run_with_topology), additionally
    /// emitting run telemetry to `recorder`: `search.ns.*` move counters
    /// plus the engine work-counter delta (`topology.*` / `connectivity.*`)
    /// attributable to this run, all attributed under a nested
    /// `search` → `ns` → propose/apply/evaluate phase scope (flat totals
    /// unchanged). With a disabled recorder the extra cost is
    /// one branch per run — results are bit-identical either way.
    pub fn run_with_topology_recorded(
        &self,
        topo: &mut WmnTopology,
        rng: &mut dyn RngCore,
        recorder: &mut dyn Recorder,
    ) -> SearchOutcome {
        let engine_before = recorder.enabled().then(|| topo.engine_stats());
        let initial_evaluation = self.evaluator.evaluate_topology(topo);
        let mut current = initial_evaluation;
        let mut best_placement = topo.placement();
        let mut best_evaluation = initial_evaluation;
        let mut trace = SearchTrace::new();
        let mut proposed = 0u64;

        for phase in 1..=self.config.stopping.max_phases {
            let neighbor = best_neighbor(
                topo,
                self.evaluator,
                self.movement.as_ref(),
                self.config.budget,
                rng,
            );
            proposed += self.config.budget.count() as u64;
            let accepted = match neighbor {
                Some(n) if n.evaluation.fitness > current.fitness => {
                    let _ = n.action.apply(topo);
                    current = n.evaluation;
                    if current.fitness > best_evaluation.fitness {
                        best_evaluation = current;
                        best_placement = topo.placement();
                    }
                    true
                }
                _ => false,
            };
            trace.push(PhaseRecord::new(
                phase,
                current.fitness,
                current.giant_size(),
                current.covered_clients(),
                accepted,
            ));
            if !accepted && self.config.stopping.stop_on_first_non_improving {
                break;
            }
        }

        if let Some(before) = engine_before {
            // Nested phase attribution (flat totals unchanged): the run's
            // counters land under `search.ns` with the propose/apply/
            // evaluate split of the phase loop; the engine-work delta is
            // the apply stage's, with connectivity staged insert/delete.
            let delta = topo.engine_stats().delta_since(&before);
            let mut scope = obs_phase(recorder, "search");
            let mut driver = obs_phase(&mut scope, "ns");
            driver.counter("search.ns.phases", trace.len() as u64);
            {
                let mut propose = obs_phase(&mut driver, "propose");
                propose.counter("search.ns.moves_proposed", proposed);
            }
            {
                let mut apply = obs_phase(&mut driver, "apply");
                delta.record_counters_staged(&mut apply);
            }
            {
                let mut evaluate = obs_phase(&mut driver, "evaluate");
                evaluate.counter("search.ns.moves_accepted", trace.accepted_count() as u64);
            }
        }

        SearchOutcome {
            best_placement,
            best_evaluation,
            initial_evaluation,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::{RandomMovement, SwapConfig, SwapMovement};
    use wmn_model::instance::InstanceSpec;
    use wmn_model::rng::rng_from_seed;

    fn paper_setup(seed: u64) -> wmn_model::ProblemInstance {
        InstanceSpec::paper_normal()
            .unwrap()
            .generate(seed)
            .unwrap()
    }

    fn quick_config(phases: usize) -> SearchConfig {
        SearchConfig {
            budget: ExplorationBudget::sampled(8),
            stopping: StoppingCondition::fixed_phases(phases),
        }
    }

    #[test]
    fn search_never_degrades() {
        let instance = paper_setup(1);
        let evaluator = Evaluator::paper_default(&instance);
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), quick_config(10));
        let mut rng = rng_from_seed(2);
        let initial = instance.random_placement(&mut rng);
        let outcome = search.run(&initial, &mut rng).unwrap();
        assert!(outcome.improvement() >= 0.0);
        assert!(instance.validate_placement(&outcome.best_placement).is_ok());
    }

    #[test]
    fn trace_has_one_record_per_phase_in_fixed_mode() {
        let instance = paper_setup(3);
        let evaluator = Evaluator::paper_default(&instance);
        let movement = RandomMovement::new(&instance);
        let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), quick_config(15));
        let mut rng = rng_from_seed(4);
        let initial = instance.random_placement(&mut rng);
        let outcome = search.run(&initial, &mut rng).unwrap();
        assert_eq!(outcome.trace.len(), 15);
    }

    #[test]
    fn strict_mode_stops_at_first_non_improving_phase() {
        let instance = paper_setup(5);
        let evaluator = Evaluator::paper_default(&instance);
        let movement = RandomMovement::new(&instance);
        let config = SearchConfig {
            budget: ExplorationBudget::sampled(4),
            stopping: StoppingCondition::paper_strict(200),
        };
        let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), config);
        let mut rng = rng_from_seed(6);
        let initial = instance.random_placement(&mut rng);
        let outcome = search.run(&initial, &mut rng).unwrap();
        // Stopped before the cap, and the last phase is the non-improving one.
        assert!(outcome.trace.len() < 200);
        let last = outcome.trace.phases().last().unwrap();
        assert!(!last.accepted);
        // Every earlier phase improved.
        for p in &outcome.trace.phases()[..outcome.trace.len() - 1] {
            assert!(p.accepted, "phase {} should have improved", p.phase());
        }
    }

    #[test]
    fn fitness_is_monotone_over_phases() {
        let instance = paper_setup(7);
        let evaluator = Evaluator::paper_default(&instance);
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), quick_config(20));
        let mut rng = rng_from_seed(8);
        let initial = instance.random_placement(&mut rng);
        let outcome = search.run(&initial, &mut rng).unwrap();
        let mut prev = 0.0f64;
        for p in outcome.trace.phases() {
            assert!(
                p.fitness() >= prev - 1e-12,
                "fitness dropped at phase {}",
                p.phase()
            );
            prev = p.fitness();
        }
    }

    #[test]
    fn swap_improves_giant_component_substantially() {
        // The Figure 4 claim at reduced scale: from a random placement, 30
        // swap phases should grow the giant component well beyond the
        // starting point.
        let instance = paper_setup(11);
        let evaluator = Evaluator::paper_default(&instance);
        let movement = SwapMovement::new(&instance, SwapConfig::default());
        let config = SearchConfig {
            budget: ExplorationBudget::sampled(16),
            stopping: StoppingCondition::fixed_phases(30),
        };
        let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), config);
        let mut rng = rng_from_seed(12);
        let initial = instance.random_placement(&mut rng);
        let outcome = search.run(&initial, &mut rng).unwrap();
        let start = outcome.initial_evaluation.giant_size();
        let end = outcome.best_evaluation.giant_size();
        assert!(
            end >= start + 10,
            "swap search should grow the giant component: {start} -> {end}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let instance = paper_setup(13);
        let evaluator = Evaluator::paper_default(&instance);
        let initial = instance.random_placement(&mut rng_from_seed(1));
        let run = |seed: u64| {
            let movement = SwapMovement::new(&instance, SwapConfig::default());
            let search = NeighborhoodSearch::new(&evaluator, Box::new(movement), quick_config(8));
            search.run(&initial, &mut rng_from_seed(seed)).unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.best_placement, b.best_placement);
        assert_eq!(a.trace, b.trace);
    }
}
