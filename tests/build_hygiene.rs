//! Build-hygiene smoke tests: the invariants every later PR leans on.
//!
//! These are deliberately cheap and broad — if instance generation stops
//! being deterministic or an ad hoc method starts emitting out-of-bounds
//! routers, every experiment and search result in the repo silently
//! changes meaning.

use wmn::prelude::*;

/// The paper's evaluation spec generated twice from one seed is identical.
#[test]
fn instance_generation_is_deterministic() {
    let spec = InstanceSpec::paper_normal().expect("paper spec is valid");
    let a = spec.generate(42).expect("generation succeeds");
    let b = spec.generate(42).expect("generation succeeds");
    assert_eq!(a, b, "same spec + seed must reproduce the same instance");

    let c = spec.generate(43).expect("generation succeeds");
    assert_ne!(a, c, "different seeds must produce different instances");
}

/// All seven ad hoc methods place every router inside the deployment area
/// and pass the instance's own placement validation.
#[test]
fn all_adhoc_methods_place_in_bounds() {
    let instance = InstanceSpec::paper_normal()
        .expect("paper spec is valid")
        .generate(7)
        .expect("generation succeeds");
    let area = instance.area();

    let methods = AdHocMethod::all();
    assert_eq!(methods.len(), 7, "the paper defines seven ad hoc methods");

    for method in methods {
        let placement = method.heuristic().place(&instance, &mut rng_from_seed(11));
        assert_eq!(
            placement.len(),
            instance.router_count(),
            "{method} must place every router"
        );
        for (id, point) in placement.iter() {
            assert!(
                area.contains(point),
                "{method} placed router {id:?} at {point} outside {area}"
            );
        }
        instance
            .validate_placement(&placement)
            .unwrap_or_else(|e| panic!("{method} failed validation: {e}"));
    }
}
