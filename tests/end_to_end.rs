//! End-to-end pipelines across the whole workspace: generate → place →
//! search → evolve, all through the public facade.

use wmn::prelude::*;

fn quick_instance(seed: u64) -> ProblemInstance {
    InstanceSpec::new(
        Area::square(96.0).expect("valid area"),
        24,
        72,
        ClientDistribution::paper_normal(&Area::square(96.0).expect("valid area"))
            .expect("valid distribution"),
        RadioProfile::new(2.0, 8.0).expect("valid radio"),
    )
    .expect("valid spec")
    .generate(seed)
    .expect("generation succeeds")
}

#[test]
fn full_pipeline_adhoc_search_ga() {
    let instance = quick_instance(1);
    let evaluator = Evaluator::paper_default(&instance);
    let mut rng = rng_from_seed(2);

    // Ad hoc placement.
    let placement = AdHocMethod::HotSpot.heuristic().place(&instance, &mut rng);
    let adhoc = evaluator.evaluate(&placement).expect("valid placement");

    // Neighborhood search refinement.
    let search = NeighborhoodSearch::new(
        &evaluator,
        Box::new(SwapMovement::new(&instance, SwapConfig::default())),
        SearchConfig {
            budget: ExplorationBudget::sampled(8),
            stopping: StoppingCondition::fixed_phases(10),
        },
    );
    let searched = search.run(&placement, &mut rng).expect("search runs");
    assert!(searched.best_evaluation.fitness >= adhoc.fitness);

    // GA refinement from the same method as initializer.
    let config = GaConfig::builder()
        .population_size(10)
        .generations(10)
        .build()
        .expect("valid config");
    let engine = GaEngine::new(&evaluator, config);
    let evolved = engine
        .run(&PopulationInit::AdHoc(AdHocMethod::HotSpot), &mut rng)
        .expect("ga runs");
    assert!(instance.validate_placement(&evolved.best_placement).is_ok());
    assert_eq!(evolved.trace.len(), 11);
}

#[test]
fn whole_pipeline_is_deterministic_per_seed() {
    let run = || {
        let instance = quick_instance(3);
        let evaluator = Evaluator::paper_default(&instance);
        let mut rng = rng_from_seed(4);
        let placement = AdHocMethod::Cross.heuristic().place(&instance, &mut rng);
        let search = NeighborhoodSearch::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            SearchConfig {
                budget: ExplorationBudget::sampled(6),
                stopping: StoppingCondition::fixed_phases(8),
            },
        );
        let outcome = search.run(&placement, &mut rng).expect("search runs");
        (
            placement,
            outcome.best_placement,
            outcome.best_evaluation.fitness,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn instance_text_format_roundtrips_through_evaluation() {
    let instance = quick_instance(5);
    let text = wmn::model::format::write_instance(&instance);
    let parsed = wmn::model::format::parse_instance(&text).expect("parses");
    assert_eq!(parsed, instance);

    // Evaluations agree between the original and the round-tripped copy.
    let mut rng = rng_from_seed(6);
    let placement = instance.random_placement(&mut rng);
    let e1 = Evaluator::paper_default(&instance)
        .evaluate(&placement)
        .expect("evaluates");
    let e2 = Evaluator::paper_default(&parsed)
        .evaluate(&placement)
        .expect("evaluates");
    assert_eq!(e1, e2);

    // Placements round-trip too.
    let ptext = wmn::model::format::write_placement(&placement);
    assert_eq!(
        wmn::model::format::parse_placement(&ptext).expect("parses"),
        placement
    );
}

#[test]
fn every_method_feeds_every_search_algorithm() {
    let instance = quick_instance(7);
    let evaluator = Evaluator::paper_default(&instance);
    for method in AdHocMethod::all() {
        let mut rng = rng_from_seed(method.name().len() as u64);
        let placement = method.heuristic().place(&instance, &mut rng);

        let hill = HillClimb::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            HillClimbConfig {
                max_phases: 4,
                samples_per_phase: 4,
                patience: 2,
            },
        );
        let h = hill.run(&placement, &mut rng).expect("hill climb runs");
        assert!(h.best_evaluation.fitness >= h.initial_evaluation.fitness);

        let sa = SimulatedAnnealing::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            AnnealingConfig {
                phases: 4,
                moves_per_phase: 4,
                ..AnnealingConfig::default()
            },
        );
        let s = sa.run(&placement, &mut rng).expect("annealing runs");
        assert!(s.best_evaluation.fitness >= s.initial_evaluation.fitness);

        let tabu = TabuSearch::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            TabuConfig {
                phases: 4,
                candidates_per_phase: 4,
                tenure: 2,
            },
        );
        let t = tabu.run(&placement, &mut rng).expect("tabu runs");
        assert!(t.best_evaluation.fitness >= t.initial_evaluation.fitness);
    }
}

#[test]
fn topology_counts_match_evaluator_measurements() {
    let instance = quick_instance(9);
    let evaluator = Evaluator::paper_default(&instance);
    let mut rng = rng_from_seed(10);
    for _ in 0..5 {
        let placement = instance.random_placement(&mut rng);
        let topo = evaluator.topology(&placement).expect("builds");
        let eval = evaluator.evaluate(&placement).expect("evaluates");
        assert_eq!(eval.giant_size(), topo.giant_size());
        assert_eq!(eval.covered_clients(), topo.covered_count());
        assert_eq!(eval.measurement.link_count, topo.adjacency().edge_count());
        assert_eq!(eval.measurement.component_count, topo.components().count());
    }
}
