//! The full method × distribution matrix through the public facade:
//! every ad hoc method must produce valid, deterministic, in-area
//! placements on every paper scenario, and every evaluation must respect
//! the structural bounds.

use wmn::prelude::*;

fn scenarios() -> Vec<(&'static str, InstanceSpec)> {
    vec![
        ("uniform", InstanceSpec::paper_uniform().expect("valid")),
        ("normal", InstanceSpec::paper_normal().expect("valid")),
        (
            "exponential",
            InstanceSpec::paper_exponential().expect("valid"),
        ),
        ("weibull", InstanceSpec::paper_weibull().expect("valid")),
    ]
}

#[test]
fn every_method_on_every_scenario_is_valid_and_bounded() {
    for (name, spec) in scenarios() {
        let instance = spec.generate(99).expect("generates");
        let evaluator = Evaluator::paper_default(&instance);
        for method in AdHocMethod::all() {
            let placement = method.heuristic().place(&instance, &mut rng_from_seed(1));
            instance
                .validate_placement(&placement)
                .unwrap_or_else(|e| panic!("{name}/{method}: {e}"));
            let eval = evaluator.evaluate(&placement).expect("evaluates");
            assert!(eval.giant_size() >= 1, "{name}/{method}");
            assert!(
                eval.giant_size() <= instance.router_count(),
                "{name}/{method}"
            );
            assert!(
                eval.covered_clients() <= instance.client_count(),
                "{name}/{method}"
            );
            assert!(
                eval.measurement.component_count >= 1
                    && eval.measurement.component_count <= instance.router_count(),
                "{name}/{method}"
            );
        }
    }
}

#[test]
fn matrix_results_are_deterministic() {
    for (_, spec) in scenarios() {
        let instance = spec.generate(123).expect("generates");
        let evaluator = Evaluator::paper_default(&instance);
        for method in AdHocMethod::all() {
            let a = method.heuristic().place(&instance, &mut rng_from_seed(5));
            let b = method.heuristic().place(&instance, &mut rng_from_seed(5));
            assert_eq!(a, b, "{method} not deterministic");
            assert_eq!(
                evaluator.evaluate(&a).expect("evaluates"),
                evaluator.evaluate(&b).expect("evaluates")
            );
        }
    }
}

#[test]
fn coverage_rules_nest_and_link_models_order() {
    // Structural sanity over the matrix: any-router coverage dominates
    // giant-only coverage, and coverage-overlap produces at least as many
    // links as mutual-range (min(a,b) <= a+b).
    for (name, spec) in scenarios() {
        let instance = spec.generate(7).expect("generates");
        let placement = instance.random_placement(&mut rng_from_seed(8));
        let giant_only = WmnTopology::build(
            &instance,
            &placement,
            TopologyConfig {
                link_model: LinkModel::MutualRange,
                coverage_rule: CoverageRule::GiantComponentOnly,
            },
        )
        .expect("builds");
        let any_router = WmnTopology::build(
            &instance,
            &placement,
            TopologyConfig {
                link_model: LinkModel::MutualRange,
                coverage_rule: CoverageRule::AnyRouter,
            },
        )
        .expect("builds");
        assert!(
            any_router.covered_count() >= giant_only.covered_count(),
            "{name}: any-router coverage must dominate"
        );

        let overlap = WmnTopology::build(
            &instance,
            &placement,
            TopologyConfig {
                link_model: LinkModel::CoverageOverlap,
                coverage_rule: CoverageRule::GiantComponentOnly,
            },
        )
        .expect("builds");
        assert!(
            overlap.adjacency().edge_count() >= giant_only.adjacency().edge_count(),
            "{name}: overlap links must be a superset of mutual-range links"
        );
        assert!(
            overlap.giant_size() >= giant_only.giant_size(),
            "{name}: more links cannot shrink the giant component"
        );
    }
}
