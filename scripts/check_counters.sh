#!/usr/bin/env bash
# Deterministic perf-regression gate over the engine's work counters.
#
# Runs the fixed-seed fig3 --quick workload (seeds 2009/42, one runner
# thread, one GA thread) with --telemetry, and compares the resulting
# counter profile against the committed COUNTERS_baseline.json with
# `wmn-report diff`. Because every counter is a deterministic work
# count — moves applied, coverage repairs by strategy, disk-cache hits,
# connectivity BFS edge visits — the snapshot is byte-stable across
# machines and thread counts, so any drift is a real change in how much
# work the engine does, not timing noise. A pessimized build (e.g.
# WMN_CHECK_CONNECTIVITY=full, which forces the full-rebuild oracle)
# fails the gate; CI relies on that as the negative test.
#
# Usage: scripts/check_counters.sh [--refresh]
#   --refresh   rewrite COUNTERS_baseline.json from the current build
#               (do this when a PR intentionally changes the work profile,
#               and say why in the PR)
#
# Environment:
#   WMN_CHECK_CONNECTIVITY   connectivity mode for the run (default
#                            "dynamic"; "rescan"/"full" select the oracle
#                            pipelines — useful as a should-fail probe)
#
# The comparison and the baseline rewrite both go through the wmn-report
# binary (crates/wmn-experiments/src/analyze.rs), so this script needs
# nothing beyond cargo.

set -euo pipefail
cd "$(dirname "$0")/.."

baseline=COUNTERS_baseline.json
mode="${WMN_CHECK_CONNECTIVITY:-dynamic}"
refresh=0
for arg in "$@"; do
  case "$arg" in
    --refresh) refresh=1 ;;
    *)
      echo "usage: scripts/check_counters.sh [--refresh]" >&2
      exit 2
      ;;
  esac
done

tmp="$PWD/target/check-counters"
rm -rf "$tmp"
cargo run --release -p wmn-experiments --bin fig3 -- \
  --quick --threads 1 --ga-threads 1 --connectivity "$mode" \
  --telemetry "$tmp/telemetry" --out "$tmp/results" >/dev/null

telemetry="$tmp/telemetry/telemetry.json"
report() {
  cargo run --release -q -p wmn-experiments --bin wmn-report -- "$@"
}

if [ "$refresh" -eq 1 ]; then
  report baseline "$telemetry" --out "$baseline"
  echo "refreshed $baseline (connectivity=$mode)"
  exit 0
fi

status=0
report diff "$baseline" "$telemetry" >"$tmp/diff.txt" || status=$?
case "$status" in
  0) echo "counter profile matches $baseline" ;;
  1)
    echo "counter profile drifted from $baseline:" >&2
    cat "$tmp/diff.txt" >&2
    echo "if the new work profile is intentional: scripts/check_counters.sh --refresh" >&2
    exit 1
    ;;
  *) exit "$status" ;;
esac
