#!/usr/bin/env bash
# Deterministic perf-regression gate over the engine's work counters.
#
# Runs the fixed-seed fig3 --quick workload (seeds 2009/42, one runner
# thread, one GA thread) with --telemetry, and compares the resulting
# counter profile against the committed COUNTERS_baseline.json. Because
# every counter is a deterministic work count — moves applied, coverage
# repairs by strategy, disk-cache hits, connectivity BFS edge visits —
# the snapshot is byte-stable across machines and thread counts, so any
# drift is a real change in how much work the engine does, not timing
# noise. A pessimized build (e.g. WMN_CHECK_CONNECTIVITY=full, which
# forces the full-rebuild oracle) fails the gate; CI relies on that as
# the negative test.
#
# Usage: scripts/check_counters.sh [--refresh]
#   --refresh   rewrite COUNTERS_baseline.json from the current build
#               (do this when a PR intentionally changes the work profile,
#               and say why in the PR)
#
# Environment:
#   WMN_CHECK_CONNECTIVITY   connectivity mode for the run (default
#                            "dynamic"; "rescan"/"full" select the oracle
#                            pipelines — useful as a should-fail probe)
#
# Requires jq; shared plumbing lives in scripts/bench_lib.sh.
source "$(dirname "$0")/bench_lib.sh"

baseline=COUNTERS_baseline.json
mode="${WMN_CHECK_CONNECTIVITY:-dynamic}"
refresh=0
for arg in "$@"; do
  case "$arg" in
    --refresh) refresh=1 ;;
    *)
      echo "usage: scripts/check_counters.sh [--refresh]" >&2
      exit 2
      ;;
  esac
done

tmp="$PWD/target/check-counters"
rm -rf "$tmp"
cargo run --release -p wmn-experiments --bin fig3 -- \
  --quick --threads 1 --ga-threads 1 --connectivity "$mode" \
  --telemetry "$tmp/telemetry" --out "$tmp/results" >/dev/null

telemetry="$tmp/telemetry/telemetry.json"
assert_artifact_schema "$telemetry" '
  .schema == "wmn-telemetry/v1" and .bin == "fig3"
  and (.counters | (type == "object" and length > 0))
  and (.histograms | type == "object")
  and (.config.connectivity | type == "string")
'

if [ "$refresh" -eq 1 ]; then
  jq '{
    schema: "wmn-counters-baseline/v1",
    workload: "fig3 --quick --threads 1 --ga-threads 1 (fixed seeds 2009/42)",
    refresh: "scripts/check_counters.sh --refresh",
    connectivity: .config.connectivity,
    counters: .counters
  }' "$telemetry" >"$baseline"
  echo "refreshed $baseline ($(jq '.counters | length' "$baseline") counters, connectivity=$mode)"
  exit 0
fi

if jq -e -n --slurpfile run "$telemetry" --slurpfile base "$baseline" \
  '$run[0].counters == $base[0].counters' >/dev/null; then
  echo "counter profile matches $baseline ($(jq '.counters | length' "$baseline") counters)"
else
  echo "counter profile drifted from $baseline:" >&2
  jq -r -n --slurpfile run "$telemetry" --slurpfile base "$baseline" '
    $run[0].counters as $r | $base[0].counters as $b |
    ([($r | keys[]), ($b | keys[])] | unique[]) as $k
    | select(($r[$k] // 0) != ($b[$k] // 0))
    | "  \($k): baseline \($b[$k] // 0) -> run \($r[$k] // 0)"
  ' >&2
  echo "if the new work profile is intentional: scripts/check_counters.sh --refresh" >&2
  exit 1
fi
