#!/usr/bin/env bash
# Records the GA child-evaluation criterion medians into BENCH_ga_eval.json,
# the perf-trajectory artifact for the topology-backed GA's population-eval
# hot loop (the companion of scripts/bench_move_eval.sh for the
# neighborhood-search loop).
#
# Three pipelines per (mix, scale) cell — see ablation_ga_eval in
# crates/bench/benches/ablations.rs:
#   incremental  parent-topology state copy + batch diff repair (default:
#                dynamic connectivity + donor-grafted disk caches)
#   rebuild      per-child in-place full rebuild (GaEvalMode::Rebuild)
#   scratch      per-child fresh topology build (the pre-workspace pipeline)
# and two child mixes: `generation` (paper operator mix, crossover 0.8) and
# `mutation` (mutation-only children — the steady-state regime where every
# child is a parent plus a few move deltas).
#
# Usage: scripts/bench_ga_eval.sh [--quick]
#   --quick   one sample per benchmark (CI smoke; medians are then noisy)
#
# Requires jq; shared plumbing lives in scripts/bench_lib.sh.
source "$(dirname "$0")/bench_lib.sh"

out=BENCH_ga_eval.json
run_bench_jsonl bench-ga-eval.jsonl "$@" ga_eval

write_artifact "$out" '
  def cell(scale): {
    generation_vs_rebuild:
      (median_of("ablation_ga_eval/rebuild_generation/" + scale)
       / median_of("ablation_ga_eval/incremental_generation/" + scale)),
    generation_vs_scratch:
      (median_of("ablation_ga_eval/scratch_generation/" + scale)
       / median_of("ablation_ga_eval/incremental_generation/" + scale)),
    mutation_vs_rebuild:
      (median_of("ablation_ga_eval/rebuild_mutation/" + scale)
       / median_of("ablation_ga_eval/incremental_mutation/" + scale)),
    mutation_vs_scratch:
      (median_of("ablation_ga_eval/scratch_mutation/" + scale)
       / median_of("ablation_ga_eval/incremental_mutation/" + scale))
  };
  {
    schema: "wmn-bench-ga-eval/v1",
    description: "One GA generation of child evaluation (64 children, 40-generation-evolved HotSpot population): topology-backed incremental delta path (dynamic connectivity + donor disk caches) vs per-child in-place full rebuild (GaEvalMode::Rebuild) vs per-child fresh-topology scratch build, for the paper operator mix (generation) and a mutation-only mix (mutation), per scale",
    bench: "cargo bench --bench ablations -- ga_eval",
    benches: .,
    speedup_median: { paper: cell("paper"), scale4: cell("scale4") }
  }
'

# Schema assertion: required keys present, every speedup a positive number,
# and one benchmark line per (pipeline, mix, scale) cell.
assert_artifact_schema "$out" '
  .schema == "wmn-bench-ga-eval/v1"
  and (.benches | length) == 12
  and ([.speedup_median.paper, .speedup_median.scale4][]
       | [.generation_vs_rebuild, .generation_vs_scratch,
          .mutation_vs_rebuild, .mutation_vs_scratch][]
       | (type == "number" and . > 0))
'

print_artifact_summary "$out" .speedup_median
