#!/usr/bin/env bash
# Records the GA child-evaluation criterion medians into BENCH_ga_eval.json,
# the perf-trajectory artifact for the topology-backed GA's population-eval
# hot loop (the companion of scripts/bench_move_eval.sh for the
# neighborhood-search loop).
#
# Three pipelines per (mix, scale) cell — see ablation_ga_eval in
# crates/bench/benches/ablations.rs:
#   incremental  parent-topology state copy + batch diff repair (default)
#   rebuild      per-child in-place full rebuild (GaEvalMode::Rebuild)
#   scratch      per-child fresh topology build (the pre-workspace pipeline)
# and two child mixes: `generation` (paper operator mix, crossover 0.8) and
# `mutation` (mutation-only children — the steady-state regime where every
# child is a parent plus a few move deltas).
#
# Usage: scripts/bench_ga_eval.sh [--quick]
#   --quick   one sample per benchmark (CI smoke; medians are then noisy)
#
# Requires jq. The criterion shim (vendor/criterion) appends one JSON line
# per benchmark to $WMN_BENCH_JSON; this script aggregates those lines,
# computes per-cell speedups, and asserts the artifact's schema.
set -euo pipefail
cd "$(dirname "$0")/.."

raw="$PWD/target/bench-ga-eval.jsonl"
out=BENCH_ga_eval.json
rm -f "$raw"

# The bench binary's working directory is the package dir, so the sink path
# must be absolute. Extra args (e.g. --quick) pass through to the shim.
WMN_BENCH_JSON="$raw" cargo bench --bench ablations -- "$@" ga_eval

jq -s '
  def median_of(name): (map(select(.id == name)) | first).median_ns;
  def cell(scale): {
    generation_vs_rebuild:
      (median_of("ablation_ga_eval/rebuild_generation/" + scale)
       / median_of("ablation_ga_eval/incremental_generation/" + scale)),
    generation_vs_scratch:
      (median_of("ablation_ga_eval/scratch_generation/" + scale)
       / median_of("ablation_ga_eval/incremental_generation/" + scale)),
    mutation_vs_rebuild:
      (median_of("ablation_ga_eval/rebuild_mutation/" + scale)
       / median_of("ablation_ga_eval/incremental_mutation/" + scale)),
    mutation_vs_scratch:
      (median_of("ablation_ga_eval/scratch_mutation/" + scale)
       / median_of("ablation_ga_eval/incremental_mutation/" + scale))
  };
  {
    schema: "wmn-bench-ga-eval/v1",
    description: "One GA generation of child evaluation (64 children, 40-generation-evolved HotSpot population): topology-backed incremental delta path vs per-child in-place full rebuild (GaEvalMode::Rebuild) vs per-child fresh-topology scratch build, for the paper operator mix (generation) and a mutation-only mix (mutation), per scale",
    bench: "cargo bench --bench ablations -- ga_eval",
    benches: .,
    speedup_median: { paper: cell("paper"), scale4: cell("scale4") }
  }
' "$raw" >"$out"

# Schema assertion: required keys present, every speedup a positive number,
# and one benchmark line per (pipeline, mix, scale) cell.
jq -e '
  .schema == "wmn-bench-ga-eval/v1"
  and (.benches | length) == 12
  and ([.speedup_median.paper, .speedup_median.scale4][]
       | [.generation_vs_rebuild, .generation_vs_scratch,
          .mutation_vs_rebuild, .mutation_vs_scratch][]
       | (type == "number" and . > 0))
' "$out" >/dev/null || {
  echo "BENCH_ga_eval.json failed schema check" >&2
  exit 1
}

echo "wrote $out:"
jq .speedup_median "$out"
