#!/usr/bin/env bash
# Records the incremental-vs-rebuild move-evaluation criterion medians into
# BENCH_move_eval.json, the repo's perf-trajectory artifact for the
# neighborhood-search hot loop.
#
# Usage: scripts/bench_move_eval.sh [--quick]
#   --quick   one sample per benchmark (CI smoke; medians are then noisy)
#
# Requires jq; shared plumbing lives in scripts/bench_lib.sh.
source "$(dirname "$0")/bench_lib.sh"

out=BENCH_move_eval.json
run_bench_jsonl bench-move-eval.jsonl "$@" move_eval

write_artifact "$out" '
  {
    schema: "wmn-bench-move-eval/v1",
    description: "1000-move neighborhood-search inner loop (propose→apply→evaluate→undo): incremental delta-evaluation engine vs full-rebuild reference, per scale",
    bench: "cargo bench --bench ablations -- move_eval",
    benches: .,
    speedup_median: {
      paper: (median_of("ablation_move_eval/rebuild/paper")
              / median_of("ablation_move_eval/incremental/paper")),
      scale4: (median_of("ablation_move_eval/rebuild/scale4")
               / median_of("ablation_move_eval/incremental/scale4"))
    }
  }
'

assert_artifact_schema "$out" '
  .schema == "wmn-bench-move-eval/v1"
  and (.benches | length) == 4
  and ([.speedup_median.paper, .speedup_median.scale4][]
       | (type == "number" and . > 0))
'

print_artifact_summary "$out" .speedup_median
