#!/usr/bin/env bash
# Records the incremental-vs-rebuild move-evaluation criterion medians into
# BENCH_move_eval.json, the repo's perf-trajectory artifact for the
# neighborhood-search hot loop.
#
# Usage: scripts/bench_move_eval.sh [--quick]
#   --quick   one sample per benchmark (CI smoke; medians are then noisy)
#
# Requires jq. The criterion shim (vendor/criterion) appends one JSON line
# per benchmark to $WMN_BENCH_JSON; this script aggregates those lines and
# computes the rebuild/incremental median speedup per scale.
set -euo pipefail
cd "$(dirname "$0")/.."

raw="$PWD/target/bench-move-eval.jsonl"
out=BENCH_move_eval.json
rm -f "$raw"

# The bench binary's working directory is the package dir, so the sink path
# must be absolute. Extra args (e.g. --quick) pass through to the shim.
WMN_BENCH_JSON="$raw" cargo bench --bench ablations -- "$@" move_eval

jq -s '
  def median_of(name): (map(select(.id == name)) | first).median_ns;
  {
    schema: "wmn-bench-move-eval/v1",
    description: "1000-move neighborhood-search inner loop (propose→apply→evaluate→undo): incremental delta-evaluation engine vs full-rebuild reference, per scale",
    bench: "cargo bench --bench ablations -- move_eval",
    benches: .,
    speedup_median: {
      paper: (median_of("ablation_move_eval/rebuild/paper")
              / median_of("ablation_move_eval/incremental/paper")),
      scale4: (median_of("ablation_move_eval/rebuild/scale4")
               / median_of("ablation_move_eval/incremental/scale4"))
    }
  }
' "$raw" >"$out"

echo "wrote $out:"
jq .speedup_median "$out"
