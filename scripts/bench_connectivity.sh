#!/usr/bin/env bash
# Records the connectivity-repair criterion medians into
# BENCH_connectivity.json: dynamic component-local repair
# (ConnectivityMode::Dynamic — DSU unions for inserted edges, bounded
# bidirectional BFS for deleted ones) vs the whole-graph DSU rescan
# (ConnectivityMode::DsuRescan), over two edge-churn shapes at paper
# scale, --scale 4, and --scale 16 (64 / 256 / 1024 routers) — see
# ablation_connectivity in crates/bench/benches/ablations.rs:
#
#   churn_*   neighborhood-search shape: 8 move+undo pairs + 2 swap pairs
#             per iteration (every repair a small edge diff)
#   batch_*   GA-child shape: one apply_moves batch of max(8, n/8)
#             relocations plus its inverse per iteration
#
# The batch_dynamic benches also emit meta_batch_deletions/<scale> lines
# (measured deleted edges per iteration), from which this script derives
# the median per-deletion repair cost and the scale16/paper scaling ratio
# — the sub-linearity evidence for the deletion path (a whole-graph rescan
# scales ~linearly in n; the target here is < 4x at 16x the routers).
#
# Usage: scripts/bench_connectivity.sh [--quick]
#   --quick   one sample per benchmark (CI smoke; medians are then noisy)
#
# Requires jq; shared plumbing lives in scripts/bench_lib.sh.
source "$(dirname "$0")/bench_lib.sh"

out=BENCH_connectivity.json
run_bench_jsonl bench-connectivity.jsonl "$@" connectivity

write_artifact "$out" '
  def cell(scale): {
    churn: (median_of("ablation_connectivity/churn_rescan/" + scale)
            / median_of("ablation_connectivity/churn_dynamic/" + scale)),
    batch: (median_of("ablation_connectivity/batch_rescan/" + scale)
            / median_of("ablation_connectivity/batch_dynamic/" + scale))
  };
  def per_deletion(scale):
    (median_of("ablation_connectivity/batch_dynamic/" + scale)
     / median_of("ablation_connectivity/meta_batch_deletions/" + scale));
  {
    schema: "wmn-bench-connectivity/v1",
    description: "Edge-churn connectivity repair: dynamic component-local engine (insert = DSU union, delete = bounded bidirectional BFS) vs whole-graph DSU rescan, for a neighborhood-search-shaped churn loop and a GA-child-shaped batch loop, at paper scale / --scale 4 / --scale 16; per_deletion_ns divides the batch median by the measured deletions per iteration",
    bench: "cargo bench --bench ablations -- connectivity",
    benches: .,
    speedup_median: {
      paper: cell("paper"),
      scale4: cell("scale4"),
      scale16: cell("scale16")
    },
    per_deletion_ns: {
      paper: per_deletion("paper"),
      scale4: per_deletion("scale4"),
      scale16: per_deletion("scale16")
    },
    deletion_scaling: {
      scale16_over_paper: (per_deletion("scale16") / per_deletion("paper")),
      routers_ratio: 16,
      sublinear_target: 4
    }
  }
'

# Schema assertion: all 12 benchmark cells plus the 3 meta lines present,
# every ratio a positive number.
assert_artifact_schema "$out" '
  .schema == "wmn-bench-connectivity/v1"
  and (.benches | length) == 15
  and ([.speedup_median.paper, .speedup_median.scale4, .speedup_median.scale16][]
       | [.churn, .batch][] | (type == "number" and . > 0))
  and ([.per_deletion_ns.paper, .per_deletion_ns.scale4, .per_deletion_ns.scale16][]
       | (type == "number" and . > 0))
  and (.deletion_scaling.scale16_over_paper | (type == "number" and . > 0))
'

print_artifact_summary "$out" '{speedup_median, per_deletion_ns, deletion_scaling}'
