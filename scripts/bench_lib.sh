# Shared helpers for the bench-artifact scripts (bench_move_eval.sh,
# bench_ga_eval.sh, bench_connectivity.sh): one place for the raw-JSONL
# collection plumbing, the jq median helper, and the schema-assert /
# summary-print steps every artifact shares.
#
# Source from a script living in scripts/:
#   source "$(dirname "$0")/bench_lib.sh"
#
# Requires jq. The vendored criterion shim (vendor/criterion) appends one
# JSON line per benchmark ({"id", "samples", "mean_ns", "median_ns",
# "best_ns"}) to $WMN_BENCH_JSON; these helpers aggregate those lines.

set -euo pipefail
cd "$(dirname "$0")/.."

# jq prelude shared by every artifact's aggregation program.
BENCH_JQ_PRELUDE='def median_of(name): (map(select(.id == name)) | first).median_ns;'

# run_bench_jsonl <raw-file-basename> [bench args...]
# Runs `cargo bench --bench ablations` with the JSONL sink pointed at
# target/<basename> (the bench binary's working directory is the package
# dir, so the sink path must be absolute) and sets $raw to the file.
run_bench_jsonl() {
  raw="$PWD/target/$1"
  shift
  rm -f "$raw"
  WMN_BENCH_JSON="$raw" cargo bench --bench ablations -- "$@"
}

# write_artifact <out-file> <jq-program>
# Aggregates $raw into <out-file> with the given jq program (the shared
# prelude is prepended, so `median_of` is available).
write_artifact() {
  local out="$1" program="$2"
  jq -s "$BENCH_JQ_PRELUDE $program" "$raw" >"$out"
}

# assert_artifact_schema <out-file> <jq-boolean-expression>
# Fails the script when the artifact does not satisfy the expression.
assert_artifact_schema() {
  local out="$1" expression="$2"
  jq -e "$expression" "$out" >/dev/null || {
    echo "$out failed schema check" >&2
    exit 1
  }
}

# print_artifact_summary <out-file> <jq-path>
print_artifact_summary() {
  local out="$1" path="$2"
  echo "wrote $out:"
  jq "$path" "$out"
}
