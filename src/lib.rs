//! # `wmn` — Mesh Router Placement for Wireless Mesh Networks
//!
//! A faithful, production-quality reproduction of
//! *"Ad Hoc and Neighborhood Search Methods for Placement of Mesh Routers
//! in Wireless Mesh Networks"* (F. Xhafa, C. Sánchez, L. Barolli — 29th
//! IEEE ICDCS Workshops, 2009).
//!
//! Given a rectangular deployment area, `N` mesh routers with oscillating
//! radio coverage radii, and `M` fixed clients drawn from a spatial
//! distribution, the library searches for router placements that maximize
//! (1) the **size of the giant component** of the router mesh and (2)
//! **user coverage** — with connectivity strictly more important.
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`model`] | geometry, radio model, client distributions, instances |
//! | [`graph`] | union–find, spatial index, mesh topology, density maps |
//! | [`metrics`] | objectives, fitness functions, the [`Evaluator`] |
//! | [`placement`] | the seven ad hoc heuristics ([`AdHocMethod`]) |
//! | [`search`] | neighborhood search: swap & random movements, SA, tabu |
//! | [`ga`] | the genetic algorithm with ad-hoc-seeded populations |
//! | [`runtime`] | deterministic parallel experiment execution ([`Runtime`]) |
//!
//! # Quick start
//!
//! ```
//! use wmn::prelude::*;
//!
//! // The paper's evaluation instance: 64 routers (radii in [2, 8]),
//! // 192 Normal-distributed clients, a 128 x 128 area.
//! let instance = InstanceSpec::paper_normal()?.generate(42)?;
//! let evaluator = Evaluator::paper_default(&instance);
//!
//! // 1. Place routers with an ad hoc method.
//! let mut rng = rng_from_seed(7);
//! let placement = AdHocMethod::HotSpot.heuristic().place(&instance, &mut rng);
//! let standalone = evaluator.evaluate(&placement)?;
//!
//! // 2. Improve it with swap-movement neighborhood search.
//! let movement = SwapMovement::new(&instance, SwapConfig::default());
//! let search = NeighborhoodSearch::new(
//!     &evaluator,
//!     Box::new(movement),
//!     SearchConfig {
//!         budget: ExplorationBudget::sampled(16),
//!         stopping: StoppingCondition::fixed_phases(10),
//!     },
//! );
//! let improved = search.run(&placement, &mut rng)?;
//! assert!(improved.best_evaluation.fitness >= standalone.fitness);
//! # Ok::<(), wmn::model::ModelError>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios and the `wmn-experiments`
//! crate for the binaries regenerating every table and figure of the
//! paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wmn_ga as ga;
pub use wmn_graph as graph;
pub use wmn_metrics as metrics;
pub use wmn_model as model;
pub use wmn_placement as placement;
pub use wmn_runtime as runtime;
pub use wmn_search as search;

pub use wmn_metrics::Evaluator;
pub use wmn_model::{InstanceSpec, Placement, ProblemInstance};
pub use wmn_placement::AdHocMethod;
pub use wmn_runtime::Runtime;

/// One-stop import for applications: the preludes of every crate.
pub mod prelude {
    pub use wmn_ga::prelude::*;
    pub use wmn_graph::{
        ConnectivityMode, CoverageRule, DynamicConnectivity, LinkModel, TopologyConfig, WmnTopology,
    };
    pub use wmn_metrics::{
        EvalWorkspace, Evaluation, Evaluator, FitnessFunction, NetworkMeasurement,
    };
    pub use wmn_model::prelude::*;
    pub use wmn_placement::prelude::*;
    pub use wmn_runtime::{Cell, MemorySink, RowSink, Runtime};
    pub use wmn_search::prelude::*;
}
