//! Robustness under radio oscillation: the paper's routers have coverage
//! "oscillating between minimum and maximum values" — so how stable is an
//! optimized placement when every radius is re-drawn?
//!
//! This study optimizes a placement once, then re-evaluates it under many
//! independent re-oscillations of the radii, reporting the distribution of
//! the giant component and coverage.
//!
//! ```bash
//! cargo run --release --example oscillation_study
//! ```

use wmn::metrics::RunningStats;
use wmn::prelude::*;

fn main() -> Result<(), ModelError> {
    let instance = InstanceSpec::paper_normal()?.generate(2009)?;
    let evaluator = Evaluator::paper_default(&instance);

    // Optimize once with HotSpot + swap search.
    let mut rng = rng_from_seed(3);
    let initial = AdHocMethod::HotSpot.heuristic().place(&instance, &mut rng);
    let search = NeighborhoodSearch::new(
        &evaluator,
        Box::new(SwapMovement::new(&instance, SwapConfig::default())),
        SearchConfig {
            budget: ExplorationBudget::sampled(16),
            stopping: StoppingCondition::fixed_phases(61),
        },
    );
    let outcome = search.run(&initial, &mut rng)?;
    let nominal = outcome.best_evaluation;
    println!("optimized under the generation-time radii:");
    println!(
        "  giant {}/64, coverage {}/192",
        nominal.giant_size(),
        nominal.covered_clients()
    );

    // Re-oscillate the radii many times and re-evaluate the same placement.
    let trials = 200;
    let mut giant = RunningStats::new();
    let mut coverage = RunningStats::new();
    let mut osc_rng = rng_from_seed(4);
    for _ in 0..trials {
        let mut oscillated = instance.clone();
        oscillated.oscillate_radii(&mut osc_rng);
        let eval = Evaluator::paper_default(&oscillated).evaluate(&outcome.best_placement)?;
        giant.push(eval.giant_size() as f64);
        coverage.push(eval.covered_clients() as f64);
    }

    println!();
    println!("under {trials} independent radius re-oscillations:");
    println!(
        "  giant component: mean {:.1} (sd {:.1}, min {:.0}, max {:.0})",
        giant.mean(),
        giant.sample_std_dev(),
        giant.min().unwrap_or(f64::NAN),
        giant.max().unwrap_or(f64::NAN)
    );
    println!(
        "  coverage:        mean {:.1} (sd {:.1}, min {:.0}, max {:.0})",
        coverage.mean(),
        coverage.sample_std_dev(),
        coverage.min().unwrap_or(f64::NAN),
        coverage.max().unwrap_or(f64::NAN)
    );
    println!();
    println!(
        "retention: {:.0}% of the optimized giant component survives a re-oscillation on average",
        100.0 * giant.mean() / nominal.giant_size().max(1) as f64
    );
    println!("(placements tuned to one radius draw degrade under oscillation —");
    println!(" the gap is the safety margin a deployment planner must budget)");
    Ok(())
}
