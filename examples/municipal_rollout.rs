//! Municipal mesh rollout: compare GA initialization strategies on an
//! "urban sprawl" (Weibull) client field — the paper's scenario 2 at a
//! planner-friendly scale.
//!
//! ```bash
//! cargo run --release --example municipal_rollout
//! ```

use wmn::prelude::*;

fn main() -> Result<(), ModelError> {
    // A district: 48 routers, 256 households, Weibull sprawl from the old
    // town corner.
    let area = Area::square(160.0)?;
    let sprawl = ClientDistribution::try_weibull(1.5, area.width() / 3.0)?;
    let spec = InstanceSpec::new(area, 48, 256, sprawl, RadioProfile::new(3.0, 10.0)?)?;
    let instance = spec.generate(7)?;
    let evaluator = Evaluator::paper_default(&instance);

    let config = GaConfig::builder()
        .population_size(32)
        .generations(150)
        .threads(4)
        .build()
        .expect("valid GA config");

    println!("district: {instance}");
    println!("GA: population 32, 150 generations, elitist, tournament(3)");
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "initialization", "giant (init)", "giant (final)", "coverage"
    );
    println!("{}", "-".repeat(62));

    let inits = [
        PopulationInit::UniformRandom,
        PopulationInit::AdHoc(AdHocMethod::Corners),
        PopulationInit::AdHoc(AdHocMethod::Cross),
        PopulationInit::AdHoc(AdHocMethod::HotSpot),
        PopulationInit::Mixed(vec![
            AdHocMethod::HotSpot,
            AdHocMethod::Cross,
            AdHocMethod::Near,
        ]),
    ];

    let mut best: Option<(String, Evaluation)> = None;
    for init in inits {
        let mut rng = rng_from_seed(11);
        let engine = GaEngine::new(&evaluator, config.clone());
        let outcome = engine.run(&init, &mut rng)?;
        let first = outcome.trace.records()[0];
        let e = outcome.best_evaluation;
        println!(
            "{:<22} {:>9}/48 {:>9}/48 {:>8}/256",
            init.name(),
            first.best_giant(),
            e.giant_size(),
            e.covered_clients()
        );
        if best.as_ref().is_none_or(|(_, b)| e.fitness > b.fitness) {
            best = Some((init.name(), e));
        }
    }

    let (name, e) = best.expect("at least one init ran");
    println!();
    println!(
        "recommended plan: {name} initialization -> {} connected routers covering {} households",
        e.giant_size(),
        e.covered_clients()
    );
    Ok(())
}
