//! Campus WiFi planning: clients cluster around three buildings (a hotspot
//! mixture); place 24 routers with HotSpot, then refine with the paper's
//! swap-movement neighborhood search, and render the deployment as an
//! ASCII map.
//!
//! ```bash
//! cargo run --release --example campus_wifi
//! ```

use wmn::prelude::*;

/// Renders routers (`#` = giant component, `o` = other) and clients
/// (`.` / `:` for covered) on a character grid.
fn render_map(topo: &WmnTopology, instance: &ProblemInstance, cols: usize, rows: usize) -> String {
    let area = instance.area();
    let mut grid = vec![vec![' '; cols]; rows];
    let cell = |p: Point| {
        let cx = ((p.x / area.width()) * (cols - 1) as f64).round() as usize;
        let cy = ((p.y / area.height()) * (rows - 1) as f64).round() as usize;
        (cx, rows - 1 - cy)
    };
    for (i, c) in instance.clients().iter().enumerate() {
        let (cx, cy) = cell(c.position());
        grid[cy][cx] = if topo.covered_mask()[i] { ':' } else { '.' };
    }
    for i in 0..topo.router_count() {
        let id = RouterId(i);
        let (cx, cy) = cell(topo.position(id));
        grid[cy][cx] = if topo.in_giant(id) { '#' } else { 'o' };
    }
    let mut out = String::new();
    out.push_str(&format!("+{}+\n", "-".repeat(cols)));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!("+{}+\n", "-".repeat(cols)));
    out
}

fn main() -> Result<(), ModelError> {
    let area = Area::new(200.0, 120.0)?;
    // Three campus buildings of different sizes.
    let buildings = ClientDistribution::try_hotspots(vec![
        Hotspot {
            center: Point::new(40.0, 60.0),
            sigma: 9.0,
            weight: 3.0, // main lecture hall
        },
        Hotspot {
            center: Point::new(120.0, 90.0),
            sigma: 7.0,
            weight: 2.0, // library
        },
        Hotspot {
            center: Point::new(160.0, 30.0),
            sigma: 6.0,
            weight: 1.0, // dorms
        },
    ])?;
    let spec = InstanceSpec::new(area, 24, 150, buildings, RadioProfile::new(6.0, 14.0)?)?;
    let instance = spec.generate(2024)?;
    let evaluator = Evaluator::paper_default(&instance);

    // HotSpot is the natural fit: strongest routers onto the busiest
    // buildings.
    let mut rng = rng_from_seed(5);
    let initial = AdHocMethod::HotSpot.heuristic().place(&instance, &mut rng);
    let before = evaluator.evaluate(&initial)?;

    // Refine with the swap movement (paper Algorithm 3).
    let movement = SwapMovement::new(&instance, SwapConfig::default());
    let search = NeighborhoodSearch::new(
        &evaluator,
        Box::new(movement),
        SearchConfig {
            budget: ExplorationBudget::sampled(24),
            stopping: StoppingCondition::fixed_phases(40),
        },
    );
    let outcome = search.run(&initial, &mut rng)?;
    let after = outcome.best_evaluation;

    println!("campus: {instance}");
    println!();
    println!(
        "HotSpot standalone : giant {:>2}/24 routers, {:>3}/150 clients covered",
        before.giant_size(),
        before.covered_clients()
    );
    println!(
        "after swap search  : giant {:>2}/24 routers, {:>3}/150 clients covered",
        after.giant_size(),
        after.covered_clients()
    );
    println!();

    let topo = evaluator.topology(&outcome.best_placement)?;
    println!(
        "deployment map (# router in mesh, o isolated router, : covered client, . uncovered):"
    );
    println!("{}", render_map(&topo, &instance, 100, 30));
    Ok(())
}
