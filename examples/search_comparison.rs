//! Local search shoot-out: the paper's swap and random movements side by
//! side with the extension algorithms (hill climbing, simulated annealing,
//! tabu search), all from the same initial placement.
//!
//! ```bash
//! cargo run --release --example search_comparison
//! ```

use wmn::prelude::*;

fn main() -> Result<(), ModelError> {
    let instance = InstanceSpec::paper_normal()?.generate(2009)?;
    let evaluator = Evaluator::paper_default(&instance);
    let initial = instance.random_placement(&mut rng_from_seed(1));
    let start = evaluator.evaluate(&initial)?;
    println!("instance: {instance}");
    println!(
        "initial random placement: giant {}/64, coverage {}/192",
        start.giant_size(),
        start.covered_clients()
    );
    println!();
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "algorithm", "giant", "coverage", "phases"
    );
    println!("{}", "-".repeat(60));

    let phases = 61;
    let budget = 16;

    // Paper Figure 4, swap movement.
    {
        let search = NeighborhoodSearch::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            SearchConfig {
                budget: ExplorationBudget::sampled(budget),
                stopping: StoppingCondition::fixed_phases(phases),
            },
        );
        let o = search.run(&initial, &mut rng_from_seed(2))?;
        print_row(
            "neighborhood search (swap)",
            &o.best_evaluation,
            o.trace.len(),
        );
    }

    // Paper Figure 4, random movement baseline.
    {
        let search = NeighborhoodSearch::new(
            &evaluator,
            Box::new(RandomMovement::new(&instance)),
            SearchConfig {
                budget: ExplorationBudget::sampled(budget),
                stopping: StoppingCondition::fixed_phases(phases),
            },
        );
        let o = search.run(&initial, &mut rng_from_seed(2))?;
        print_row(
            "neighborhood search (random)",
            &o.best_evaluation,
            o.trace.len(),
        );
    }

    // Extensions: the paper's "full featured local search" future work.
    {
        let climber = HillClimb::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            HillClimbConfig {
                max_phases: phases,
                samples_per_phase: budget,
                patience: 10,
            },
        );
        let o = climber.run(&initial, &mut rng_from_seed(2))?;
        print_row(
            "hill climb (swap, first-improve)",
            &o.best_evaluation,
            o.trace.len(),
        );
    }
    {
        let sa = SimulatedAnnealing::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            AnnealingConfig {
                initial_temperature: 25.0, // lexicographic fitness units
                cooling: 0.9,
                moves_per_phase: budget,
                phases,
            },
        );
        let o = sa.run(&initial, &mut rng_from_seed(2))?;
        print_row(
            "simulated annealing (swap)",
            &o.best_evaluation,
            o.trace.len(),
        );
    }
    {
        let tabu = TabuSearch::new(
            &evaluator,
            Box::new(SwapMovement::new(&instance, SwapConfig::default())),
            TabuConfig {
                tenure: 8,
                candidates_per_phase: budget,
                phases,
            },
        );
        let o = tabu.run(&initial, &mut rng_from_seed(2))?;
        print_row("tabu search (swap)", &o.best_evaluation, o.trace.len());
    }

    println!();
    println!("The swap movement dominates the random baseline (paper Figure 4);");
    println!("the extension searches trade a little wall-clock for escape from");
    println!("the plateaus where strict best-neighbor search stops.");
    Ok(())
}

fn print_row(name: &str, e: &Evaluation, phases: usize) {
    println!(
        "{:<28} {:>7}/64 {:>7}/192 {:>8}",
        name,
        e.giant_size(),
        e.covered_clients(),
        phases
    );
}
