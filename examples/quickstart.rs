//! Quickstart: evaluate all seven ad hoc placement methods on the paper's
//! evaluation instance and print a Table-1-style comparison.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use wmn::prelude::*;

fn main() -> Result<(), ModelError> {
    // 64 routers (radii oscillating in [2, 8]), 192 clients ~ N(64, 12.8),
    // on a 128 x 128 area — the instance behind the paper's Table 1.
    let instance = InstanceSpec::paper_normal()?.generate(42)?;
    let evaluator = Evaluator::paper_default(&instance);

    println!("instance: {instance}");
    println!();
    println!(
        "{:<10} {:>15} {:>15}   applicable",
        "method", "giant component", "covered clients"
    );
    println!("{}", "-".repeat(56));

    let mut rng = rng_from_seed(7);
    for method in AdHocMethod::all() {
        let heuristic = method.heuristic();
        let placement = heuristic.place(&instance, &mut rng);
        let eval = evaluator.evaluate(&placement)?;
        let applicable = match heuristic.check_applicable(&instance) {
            Ok(()) => "yes".to_owned(),
            Err(why) => format!("no ({why})"),
        };
        println!(
            "{:<10} {:>9}/64 {:>11}/192   {}",
            method.name(),
            eval.giant_size(),
            eval.covered_clients(),
            applicable
        );
    }

    println!();
    println!("Ad hoc methods are fast but far from optimal (paper §3);");
    println!("see the `search_comparison` and `municipal_rollout` examples");
    println!("for the neighborhood search and GA that refine them.");
    Ok(())
}
